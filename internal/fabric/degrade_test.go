package fabric

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/rng"
)

// deadFleet returns a coordinator whose workers are all dark: their
// listeners are closed before the first dispatch, so every dial fails
// fast with connection-refused.
func deadFleet(t *testing.T, n int, cfg Config) *Coordinator {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(api.NewServer(api.NewService(testOptions())))
		urls[i] = ts.URL
		ts.Close()
	}
	cfg.Workers = urls
	if cfg.Service == nil {
		cfg.Service = api.NewService(testOptions())
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestFabricAllWorkersDarkDegradesLocal is the degradation oracle: a
// coordinator whose whole fleet is unreachable completes the sweep
// through its own Service, byte-identical to a single-node run, and
// reports the fleet degraded.
func TestFabricAllWorkersDarkDegradesLocal(t *testing.T) {
	canonical, want := singleNodeLines(t, sweepBody)
	coord := deadFleet(t, 3, Config{
		Lease:           200 * time.Millisecond,
		RetryBackoff:    time.Millisecond,
		RetryBackoffCap: 10 * time.Millisecond,
		BreakerCooldown: time.Minute, // no probes during the test window
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var lines [][]byte
	err := coord.SweepStreamFrom(ctx, canonical, 0, nil, func(line []byte) error {
		lines = append(lines, append([]byte(nil), line...))
		return nil
	})
	if err != nil {
		t.Fatalf("dark-fleet sweep did not degrade to local execution: %v", err)
	}
	requireIdentical(t, lines, want)

	st := coord.Status()
	if !st.Degraded {
		t.Error("status not degraded after an all-dark sweep")
	}
	if st.LocalPoints != int64(len(want)) {
		t.Errorf("local points = %d, want %d", st.LocalPoints, len(want))
	}
	for _, w := range st.Workers {
		if w.Circuit == "closed" {
			t.Errorf("worker %s circuit closed after refusing every dial", w.URL)
		}
	}

	// The degradation is visible on the coordinator's /readyz — ready
	// (it still serves, as the sweep above proved) but degraded, with
	// the fleet circuits attached — while /healthz stays a plain ok
	// liveness probe.
	handler := coord.Handler(api.NewServer(coord.cfg.Service))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz status %d, want 200 (degraded nodes stay in rotation)", rec.Code)
	}
	var ready struct {
		Ready    bool `json:"ready"`
		Degraded bool `json:"degraded"`
		Fleet    struct {
			Degraded bool           `json:"degraded"`
			Workers  []WorkerStatus `json:"workers"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || !ready.Degraded || !ready.Fleet.Degraded || len(ready.Fleet.Workers) != 3 {
		t.Fatalf("/readyz body: %s", rec.Body.Bytes())
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 200 || !health.OK {
		t.Fatalf("/healthz of a degraded node: status %d, body %s", rec.Code, rec.Body.Bytes())
	}
}

// TestFabricPartialDarkStaysRemote: with one worker dark out of three
// (its listener closed, every dial refused), the survivors absorb its
// ranges, its circuit opens and sheds further claims, the output stays
// byte-identical, and status reports degradation without the sweep
// having failed.
func TestFabricPartialDarkStaysRemote(t *testing.T) {
	canonical, want := singleNodeLines(t, sweepBody)
	urls := make([]string, 3)
	for i := range urls {
		ts := httptest.NewServer(api.NewServer(api.NewService(testOptions())))
		urls[i] = ts.URL
		if i == 0 {
			ts.Close() // the dark worker: refuses every dial
		} else {
			t.Cleanup(ts.Close)
		}
	}
	coord, err := New(Config{
		Service:          api.NewService(testOptions()),
		Workers:          urls,
		Lease:            300 * time.Millisecond,
		MaxAttempts:      60,
		RetryBackoff:     time.Millisecond,
		RetryBackoffCap:  20 * time.Millisecond,
		BreakerThreshold: 1, // first refused dial opens the circuit
		BreakerCooldown:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The dark worker may own no range on a small grid and sit out a
	// fast sweep entirely; repeat (byte-checking every run) until it
	// has provably been tried and shed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		requireIdentical(t, collectDistributed(t, coord, canonical, 0), want)
		if coord.Status().Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dark worker's circuit never opened")
		}
	}
	healthy := 0
	for _, w := range coord.Status().Workers {
		if w.Circuit == "closed" {
			healthy++
		}
	}
	if healthy != 2 {
		t.Fatalf("%d circuits closed, want 2 (exactly the healthy workers): %+v", healthy, coord.Status().Workers)
	}
}

// TestFabricBreakerRecovers: a worker that comes back is readmitted
// through the half-open probe and the fleet returns to non-degraded
// status.
func TestFabricBreakerRecovers(t *testing.T) {
	canonical, want := singleNodeLines(t, sweepBody)
	coord, faults := newFleet(t, 2, Config{
		Lease:            300 * time.Millisecond,
		MaxAttempts:      60,
		RetryBackoff:     time.Millisecond,
		RetryBackoffCap:  10 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  50 * time.Millisecond,
	})
	faults[1].mu.Lock()
	faults[1].hang = true
	faults[1].mu.Unlock()
	// Hanging fails every dispatch through the lease watchdog — even a
	// 1-point probe cannot slip through and re-close the circuit — so
	// the worker is guaranteed degraded once it has been tried.
	deadline := time.Now().Add(10 * time.Second)
	for !coord.Status().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("worker 1's circuit never opened")
		}
		requireIdentical(t, collectDistributed(t, coord, canonical, 0), want)
	}

	faults[1].mu.Lock()
	faults[1].hang = false
	faults[1].mu.Unlock()
	// A fresh sweep after the cooldown lets the probe through and
	// closes the circuit again.
	deadline = time.Now().Add(10 * time.Second)
	for coord.Status().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("circuit never re-closed after the worker recovered")
		}
		time.Sleep(60 * time.Millisecond)
		requireIdentical(t, collectDistributed(t, coord, canonical, 0), want)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Now()
	b := newBreaker(2, time.Minute)
	if !b.Allow(now) || b.State() != "closed" {
		t.Fatal("fresh breaker not closed")
	}
	b.Failure(now)
	if !b.Allow(now) {
		t.Fatal("one failure below threshold opened the circuit")
	}
	b.Failure(now)
	if b.Allow(now) {
		t.Fatal("threshold failures did not open the circuit")
	}
	if b.State() != "open" {
		t.Fatalf("state = %s, want open", b.State())
	}
	// Cooldown elapses: exactly one probe is admitted.
	later := now.Add(2 * time.Minute)
	if !b.Allow(later) {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.Allow(later) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: straight back to open, cooldown restarted.
	b.Failure(later)
	if b.Allow(later) || b.State() != "open" {
		t.Fatal("failed probe did not reopen the circuit")
	}
	// Next probe succeeds: closed again.
	final := later.Add(2 * time.Minute)
	if !b.Allow(final) {
		t.Fatal("second probe refused")
	}
	b.Success()
	if !b.Closed() || !b.Allow(final) {
		t.Fatal("successful probe did not close the circuit")
	}
	// An unused probe slot is returned by CancelProbe.
	b.Failure(final)
	b.Failure(final)
	probeAt := final.Add(2 * time.Minute)
	if !b.Allow(probeAt) {
		t.Fatal("probe refused after cooldown")
	}
	b.CancelProbe()
	if !b.Allow(probeAt) {
		t.Fatal("cancelled probe slot not reusable")
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	c := &Coordinator{cfg: Config{RetryBackoff: 10 * time.Millisecond, RetryBackoffCap: 80 * time.Millisecond}}
	c.jitter = rng.New(1)
	for attempts := 1; attempts <= 64; attempts++ {
		window := 80 * time.Millisecond
		if attempts <= 3 {
			window = 10 * time.Millisecond << uint(attempts-1)
		}
		for i := 0; i < 32; i++ {
			if d := c.backoffDelay(attempts); d < 0 || d > window {
				t.Fatalf("attempt %d: delay %s outside [0, %s]", attempts, d, window)
			}
		}
	}
}
