package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
)

// This file unit-tests the replication wire protocol — quorum fan-out,
// gap backfill, job re-create, frame integrity, truncate-to-prefix and
// term fencing — against real Replica HTTP servers over real stores.
// The end-to-end failover behavior lives in ha_test.go.

// replLine is the deterministic result line for point i.
func replLine(i int) []byte { return []byte(fmt.Sprintf("{\"point\":%d}\n", i)) }

// replLines is the concatenated lines [from, to).
func replLines(from, to int) []byte {
	var b bytes.Buffer
	for i := from; i < to; i++ {
		b.Write(replLine(i))
	}
	return b.Bytes()
}

// replicaNode is one replica under test: its store, the Replica, and
// an HTTP server exposing /v1/replica/*.
type replicaNode struct {
	store *jobs.Store
	rp    *Replica
	url   string
}

func newReplicaNode(t *testing.T) *replicaNode {
	t.Helper()
	store, err := jobs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplica(ReplicaConfig{Store: store, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	rp.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &replicaNode{store: store, rp: rp, url: ts.URL}
}

// replTestJob returns a canonical request, its content-keyed id, and
// the initial meta, plus a leader-side store already holding the job.
func replTestJob(t *testing.T, lines int) (leader *jobs.Store, id string, request []byte, meta jobs.Meta) {
	t.Helper()
	request = []byte(`{"n":9}`)
	id = jobs.IDFor(request)
	meta = jobs.Meta{ID: id, State: jobs.Pending, Total: 9, CreatedAt: 1}
	leader, err := jobs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Create(meta, request); err != nil {
		t.Fatal(err)
	}
	if lines > 0 {
		run := meta
		run.State, run.Completed = jobs.Running, lines
		if _, err := leader.ApplyReplicated(id, 0, replLines(0, lines), run); err != nil {
			t.Fatal(err)
		}
	}
	return leader, id, request, meta
}

func newTestReplicator(t *testing.T, leader *jobs.Store, peers []string, quorum int) *Replicator {
	t.Helper()
	r, err := NewReplicator(ReplicatorConfig{
		Self:    "http://leader.test",
		Peers:   peers,
		Store:   leader,
		Quorum:  quorum,
		Backoff: time.Millisecond,
		Timeout: 5 * time.Second,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func readResults(t *testing.T, s *jobs.Store, id string) []byte {
	t.Helper()
	data, err := os.ReadFile(s.ResultsPath(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		t.Fatal(err)
	}
	return data
}

// TestReplicationQuorumRoundTrip drives the full sink contract against
// two live replicas: create, two checkpoints, status, delete — every
// mutation must land byte-identically on both.
func TestReplicationQuorumRoundTrip(t *testing.T) {
	leader, id, request, meta := replTestJob(t, 0)
	a, b := newReplicaNode(t), newReplicaNode(t)
	repl := newTestReplicator(t, leader, []string{a.url, b.url}, 2)

	if err := repl.JobCreated(meta, request); err != nil {
		t.Fatalf("JobCreated: %v", err)
	}
	for _, n := range []*replicaNode{a, b} {
		got, err := n.store.Request(id)
		if err != nil || !bytes.Equal(got, request) {
			t.Fatalf("replica request after create: %q, %v", got, err)
		}
	}

	// First checkpoint: lines [0,4). Leader appends locally first (the
	// Manager always makes lines durable before the sink runs).
	run := meta
	run.State, run.Completed = jobs.Running, 4
	if _, err := leader.ApplyReplicated(id, 0, replLines(0, 4), run); err != nil {
		t.Fatal(err)
	}
	if err := repl.Checkpoint(id, run, 0, replLines(0, 4)); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	// Second: [4,9) and the terminal meta.
	done := run
	done.State, done.Completed = jobs.Done, 9
	if _, err := leader.ApplyReplicated(id, 4, replLines(4, 9), done); err != nil {
		t.Fatal(err)
	}
	if err := repl.Checkpoint(id, done, 4, replLines(4, 9)); err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	for _, n := range []*replicaNode{a, b} {
		if got := readResults(t, n.store, id); !bytes.Equal(got, replLines(0, 9)) {
			t.Fatalf("replica results:\n%s\nwant:\n%s", got, replLines(0, 9))
		}
		m, err := n.store.ReadMeta(id)
		if err != nil || m.State != jobs.Done || m.Completed != 9 {
			t.Fatalf("replica meta: %+v, %v", m, err)
		}
	}

	peers, ok := repl.Status()
	if !ok {
		t.Fatal("quorum not OK after two clean rounds")
	}
	for _, p := range peers {
		if !p.Acked || p.LagLines != 0 {
			t.Fatalf("peer status %+v, want acked with zero lag", p)
		}
	}

	if err := repl.JobRemoved(id); err != nil {
		t.Fatalf("JobRemoved: %v", err)
	}
	for _, n := range []*replicaNode{a, b} {
		if _, err := n.store.ReadMeta(id); !errors.Is(err, jobs.ErrNotFound) {
			t.Fatalf("job still on replica after remove: %v", err)
		}
	}
}

// TestReplicationGapBackfillHeals: a replica that missed earlier
// checkpoints (it was down) answers 409 with its durable count, and the
// leader backfills the whole range from its local store — one
// Checkpoint call, no manual recovery.
func TestReplicationGapBackfillHeals(t *testing.T) {
	leader, id, request, meta := replTestJob(t, 9)
	a, b := newReplicaNode(t), newReplicaNode(t)

	// Both replicas know the job, but only A received the first
	// checkpoint — B was down for it.
	early := newTestReplicator(t, leader, []string{a.url, b.url}, 2)
	if err := early.JobCreated(meta, request); err != nil {
		t.Fatal(err)
	}
	run := meta
	run.State, run.Completed = jobs.Running, 4
	onlyA := newTestReplicator(t, leader, []string{a.url}, 1)
	if err := onlyA.Checkpoint(id, run, 0, replLines(0, 4)); err != nil {
		t.Fatal(err)
	}

	// The next full-fleet checkpoint starts at line 4; B holds 0 lines
	// and must be backfilled transparently.
	done := run
	done.State, done.Completed = jobs.Done, 9
	if err := early.Checkpoint(id, done, 4, replLines(4, 9)); err != nil {
		t.Fatalf("checkpoint over lagging replica: %v", err)
	}
	for _, n := range []*replicaNode{a, b} {
		if got := readResults(t, n.store, id); !bytes.Equal(got, replLines(0, 9)) {
			t.Fatalf("replica results after backfill:\n%s\nwant:\n%s", got, replLines(0, 9))
		}
	}
}

// TestReplicationRecreateHealsFreshReplica: a replica with a fresh disk
// (no job at all) answers 404; the leader re-creates the job there and
// then heals the line gap — both within one Checkpoint call.
func TestReplicationRecreateHealsFreshReplica(t *testing.T) {
	leader, id, _, meta := replTestJob(t, 9)
	fresh := newReplicaNode(t)
	repl := newTestReplicator(t, leader, []string{fresh.url}, 1)

	done := meta
	done.State, done.Completed = jobs.Done, 9
	if err := repl.Checkpoint(id, done, 4, replLines(4, 9)); err != nil {
		t.Fatalf("checkpoint to fresh replica: %v", err)
	}
	if got := readResults(t, fresh.store, id); !bytes.Equal(got, replLines(0, 9)) {
		t.Fatalf("fresh replica after heal:\n%s\nwant:\n%s", got, replLines(0, 9))
	}
	m, err := fresh.store.ReadMeta(id)
	if err != nil || m.State != jobs.Done {
		t.Fatalf("fresh replica meta: %+v, %v", m, err)
	}
}

// TestReplicationTruncatesUnackedSuffix pins the replica invariant: a
// replica holding MORE lines than the new leader's checkpoint offset
// (a dead leader's un-quorum-acked suffix) rolls back to the offset and
// re-appends — the results file is always a byte prefix of the
// canonical stream.
func TestReplicationTruncatesUnackedSuffix(t *testing.T) {
	leader, id, request, meta := replTestJob(t, 9)
	n := newReplicaNode(t)
	repl := newTestReplicator(t, leader, []string{n.url}, 1)
	if err := repl.JobCreated(meta, request); err != nil {
		t.Fatal(err)
	}
	// The replica holds 6 lines from the old leader…
	run := meta
	run.State, run.Completed = jobs.Running, 6
	if err := repl.Checkpoint(id, run, 0, replLines(0, 6)); err != nil {
		t.Fatal(err)
	}
	// …but only 4 were quorum-acked: the new leader resumes at 4.
	done := meta
	done.State, done.Completed = jobs.Done, 9
	if err := repl.Checkpoint(id, done, 4, replLines(4, 9)); err != nil {
		t.Fatalf("checkpoint behind replica count: %v", err)
	}
	if got := readResults(t, n.store, id); !bytes.Equal(got, replLines(0, 9)) {
		t.Fatalf("replica after rollback:\n%s\nwant:\n%s", got, replLines(0, 9))
	}
}

// TestReplicationStaleTermFenced: a replica that has seen a newer term
// rejects every write from the old leader with 412, the replicator
// latches ErrFenced (firing OnFenced once), and every subsequent
// operation fails fast without touching the wire.
func TestReplicationStaleTermFenced(t *testing.T) {
	leader, id, request, meta := replTestJob(t, 4)
	n := newReplicaNode(t)
	n.rp.SetTerm(3, "http://new-leader.test")

	var fencedAt uint64
	repl, err := NewReplicator(ReplicatorConfig{
		Self:     "http://old-leader.test",
		Peers:    []string{n.url},
		Store:    leader,
		Quorum:   1,
		Backoff:  time.Millisecond,
		OnFenced: func(term uint64) { fencedAt = term },
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	repl.SetTerm(2) // older than the replica's 3

	if err := repl.JobCreated(meta, request); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale create error = %v, want ErrFenced", err)
	}
	if fencedAt != 3 {
		t.Fatalf("OnFenced term = %d, want 3", fencedAt)
	}
	if _, err := n.store.ReadMeta(id); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatal("fenced create still landed on the replica")
	}
	// The latch: later mutations fail immediately, no healing, no wire.
	if err := repl.Checkpoint(id, meta, 0, replLines(0, 4)); !errors.Is(err, ErrFenced) {
		t.Fatalf("post-fence checkpoint error = %v, want ErrFenced", err)
	}
	if fenced, term := repl.Fenced(); !fenced || term != 3 {
		t.Fatalf("Fenced() = %v, %d, want true, 3", fenced, term)
	}
}

// TestReplicationSameTermSplitClaim: two claimants of the SAME term
// cannot both win — the replica accepts the first and fences the
// second, which is what makes the staggered promotion race safe.
func TestReplicationSameTermSplitClaim(t *testing.T) {
	n := newReplicaNode(t)
	post := func(term uint64, claimant string) int {
		body := strings.NewReader(fmt.Sprintf(`{"term":%d,"leader":%q}`, term, claimant))
		resp, err := http.Post(n.url+"/v1/replica/heartbeat", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(2, "http://n1.test"); got != http.StatusOK {
		t.Fatalf("first term-2 claim: status %d", got)
	}
	if got := post(2, "http://n2.test"); got != http.StatusPreconditionFailed {
		t.Fatalf("second term-2 claimant: status %d, want 412", got)
	}
	if got := post(2, "http://n1.test"); got != http.StatusOK {
		t.Fatalf("winner's lease renewal: status %d", got)
	}
}

// TestReplicationCorruptFrameRejected: a checkpoint whose framed body
// was damaged in flight fails the replica-side CRC-32C check with 422
// and not one byte lands — partial application would let the replica
// claim lines it does not hold.
func TestReplicationCorruptFrameRejected(t *testing.T) {
	leader, id, request, meta := replTestJob(t, 0)
	n := newReplicaNode(t)
	repl := newTestReplicator(t, leader, []string{n.url}, 1)

	if err := repl.JobCreated(meta, request); err != nil {
		t.Fatal(err)
	}
	body := frameAll(replLines(0, 4))
	body[bytes.IndexByte(body, '{')] ^= 0x04 // flip a payload byte inside a frame

	metaJSON := fmt.Sprintf(`{"id":%q,"state":"running","total":9,"completed":4,"createdAt":1}`, id)
	req, err := http.NewRequest(http.MethodPost, n.url+"/v1/replica/jobs/"+id+"/checkpoint?from=0", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderReplicaTerm, "1")
	req.Header.Set(HeaderReplicaLeader, "http://leader.test")
	req.Header.Set(HeaderReplicaMeta, metaJSON)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt frame: status %d, want 422", resp.StatusCode)
	}
	if got := readResults(t, n.store, id); len(got) != 0 {
		t.Fatalf("corrupt checkpoint landed %d bytes", len(got))
	}
}

// TestReplicationFrameRoundTrip pins frameAll against the api package's
// unframing — the same framing the sweep stream uses on the wire.
func TestReplicationFrameRoundTrip(t *testing.T) {
	lines := replLines(0, 5)
	got, err := unframeAll(frameAll(lines))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, lines) {
		t.Fatalf("frame round trip:\n%q\nwant\n%q", got, lines)
	}
	// And a single reference frame matches api.FrameLine exactly.
	var one []byte
	one = api.AppendFrameLine(one, replLine(0))
	if !bytes.Equal(frameAll(replLine(0)), one) {
		t.Fatal("frameAll disagrees with api.AppendFrameLine")
	}
}

// TestReplicaStatusEndpoints smoke-tests the read side: GET job state
// and GET self status carry the durable line count and the lease view.
func TestReplicaStatusEndpoints(t *testing.T) {
	leader, id, request, meta := replTestJob(t, 9)
	n := newReplicaNode(t)
	repl := newTestReplicator(t, leader, []string{n.url}, 1)
	if err := repl.JobCreated(meta, request); err != nil {
		t.Fatal(err)
	}
	run := meta
	run.State, run.Completed = jobs.Running, 9
	if err := repl.Checkpoint(id, run, 0, replLines(0, 9)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(n.url + "/v1/replica/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Meta  jobs.Meta `json:"meta"`
		Lines int       `json:"lines"`
	}
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.Lines != 9 || st.Meta.Completed != 9 {
		t.Fatalf("replica job status %+v lines %d, want 9 lines", st.Meta, st.Lines)
	}

	resp2, err := http.Get(n.url + "/v1/replica/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var self struct {
		Term   uint64 `json:"term"`
		Leader string `json:"leader"`
	}
	if err := jsonDecode(resp2, &self); err != nil {
		t.Fatal(err)
	}
	if self.Term != 1 || self.Leader != "http://leader.test" {
		t.Fatalf("replica self status term=%d leader=%q", self.Term, self.Leader)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
