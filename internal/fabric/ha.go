package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobs"
)

// Role is a fleet node's place in the leader lease.
type Role string

const (
	// RoleLeader executes jobs and replicates every durable mutation.
	RoleLeader Role = "leader"
	// RoleStandby holds replicated job copies and watches the leader's
	// lease, promoting when it expires.
	RoleStandby Role = "standby"
	// RoleFenced is the transient state of an ex-leader that has
	// observed a newer term and is halting its write path.
	RoleFenced Role = "fenced"
)

// HAConfig configures an HA controller.
type HAConfig struct {
	// Self is this node's advertised URL; it must appear in Peers.
	Self string
	// Peers lists every fleet node's URL — including Self — in the same
	// order on every node. The order is the deterministic promotion
	// order: when the leader's lease expires, the surviving peers
	// promote in list order, each waiting one PromoteStagger longer
	// than its predecessor, so exactly one wins without an election.
	Peers []string
	// Store is the node's local job store (the replica writes into it;
	// a promotion builds the new leader's manager over it).
	Store *jobs.Store
	// Client issues heartbeats and replication writes (default
	// http.DefaultClient).
	Client *http.Client
	// HeartbeatEvery is the leader's lease-renewal period (default 1s).
	HeartbeatEvery time.Duration
	// LeaseTTL is how stale the leader's heartbeat may grow before
	// standbys begin promoting (default 4 × HeartbeatEvery).
	LeaseTTL time.Duration
	// PromoteStagger separates consecutive standbys' promotion
	// deadlines (default LeaseTTL / 2).
	PromoteStagger time.Duration
	// Quorum is the peer-ack write quorum handed to the leader's
	// Replicator, and the heartbeat-ack count a promotion needs
	// (default: cluster majority minus the leader itself).
	Quorum int
	// Attempts / Backoff / Timeout tune the Replicator's per-peer
	// retries and per-request deadline.
	Attempts int
	Backoff  time.Duration
	Timeout  time.Duration
	// Leader starts this node as the cluster's initial leader at term 1
	// (exactly one node per fleet).
	Leader bool
	// OnPromote takes this node to leader at the given term: it builds
	// the execution plane (a jobs.Manager over Store with repl as its
	// ReplicationSink) and returns the function that tears it down
	// again when the node is fenced. An error aborts the promotion.
	OnPromote func(term uint64, repl *Replicator) (demote func(), err error)
	// Logf receives role transitions and lease events. Nil discards.
	Logf func(format string, args ...any)
}

// HA runs the term-numbered leader lease over a fleet: one controller
// per node. The leader renews its lease by heartbeating every peer;
// standbys watch their local replica's lease clock and promote — in
// deterministic, staggered order — when it expires. Fencing is
// delegated to the replication plane: every write and heartbeat
// carries a term, replicas reject stale ones, and a rejected leader
// demotes itself instead of split-brain double-appending.
type HA struct {
	cfg     HAConfig
	replica *Replica

	mu      sync.Mutex
	role    Role
	term    uint64
	leader  string
	repl    *Replicator
	demote  func()
	hbAcks  int // peer acks in the last heartbeat round (leader only)
	fenceCh chan uint64
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewHA validates the config and builds the controller (and its
// replica). Call Start to join the fleet.
func NewHA(cfg HAConfig) (*HA, error) {
	if cfg.Store == nil {
		return nil, errors.New("fabric: HA needs a jobs.Store")
	}
	selfAt := -1
	for i, p := range cfg.Peers {
		if p == cfg.Self {
			selfAt = i
		}
	}
	if selfAt < 0 {
		return nil, fmt.Errorf("fabric: self %q not in peers %v", cfg.Self, cfg.Peers)
	}
	if len(cfg.Peers) < 2 {
		return nil, errors.New("fabric: HA needs at least 2 peers")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 4 * cfg.HeartbeatEvery
	}
	if cfg.PromoteStagger <= 0 {
		cfg.PromoteStagger = cfg.LeaseTTL / 2
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = len(cfg.Peers) / 2 // majority of n, minus the leader itself
	}
	h := &HA{
		cfg:     cfg,
		role:    RoleStandby,
		fenceCh: make(chan uint64, 4),
		done:    make(chan struct{}),
	}
	rp, err := NewReplica(ReplicaConfig{
		Store: cfg.Store,
		Logf:  cfg.Logf,
		OnTermAdvance: func(term uint64, leader string) {
			// A newer term on the wire is the fencing signal; the run
			// loop demotes if this node thought it was leading.
			select {
			case h.fenceCh <- term:
			default:
			}
		},
	})
	if err != nil {
		return nil, err
	}
	h.replica = rp
	return h, nil
}

// Replica returns the node's replica (for mounting its routes
// standalone; Handler does it automatically).
func (h *HA) Replica() *Replica { return h.replica }

func (h *HA) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// Start joins the fleet: the configured initial leader promotes itself
// at term 1 (no quorum needed — nothing was ever replicated at term
// 0), everyone else starts standby with a fresh lease clock.
func (h *HA) Start() error {
	if h.cfg.Leader {
		if err := h.promote(1); err != nil {
			return err
		}
	}
	h.wg.Add(1)
	go h.run()
	return nil
}

// Close stops the controller's goroutine. It does NOT demote a leader
// gracefully — closing is how tests model a crash; the execution plane
// is torn down by its owner.
func (h *HA) Close() {
	close(h.done)
	h.wg.Wait()
}

func (h *HA) run() {
	defer h.wg.Done()
	tick := h.cfg.HeartbeatEvery
	if q := h.cfg.LeaseTTL / 4; q < tick {
		tick = q
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var lastBeat time.Time
	for {
		select {
		case <-h.done:
			return
		case term := <-h.fenceCh:
			h.stepDown(term)
		case <-ticker.C:
			h.mu.Lock()
			role := h.role
			h.mu.Unlock()
			switch role {
			case RoleLeader:
				if time.Since(lastBeat) >= h.cfg.HeartbeatEvery {
					lastBeat = time.Now()
					if fencedBy := h.sendHeartbeats(); fencedBy > 0 {
						h.stepDown(fencedBy)
					}
				}
			case RoleStandby:
				h.maybePromote()
			}
		}
	}
}

// sendHeartbeats renews the lease on every peer, returning the fencing
// term if any peer knows a newer leader.
func (h *HA) sendHeartbeats() (fencedBy uint64) {
	h.mu.Lock()
	term := h.term
	h.mu.Unlock()
	acks, fenced := h.heartbeatRound(term, h.cfg.Self)
	h.mu.Lock()
	h.hbAcks = acks
	h.mu.Unlock()
	return fenced
}

// heartbeatRound POSTs {term, leader} to every peer but self and
// counts acks; the largest fencing term seen (0 if none) is returned.
func (h *HA) heartbeatRound(term uint64, leader string) (acks int, fencedBy uint64) {
	body, _ := json.Marshal(heartbeatBody{Term: term, Leader: leader})
	type result struct {
		ok    bool
		fence uint64
	}
	var peers []string
	for _, p := range h.cfg.Peers {
		if p != h.cfg.Self {
			peers = append(peers, p)
		}
	}
	results := make(chan result, len(peers))
	for _, peer := range peers {
		go func(peer string) {
			ctx, cancel := timeoutContext(h.cfg.LeaseTTL)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/replica/heartbeat", bytes.NewReader(body))
			if err != nil {
				results <- result{}
				return
			}
			resp, err := h.cfg.Client.Do(req)
			if err != nil {
				results <- result{}
				return
			}
			defer drain(resp)
			if resp.StatusCode == http.StatusPreconditionFailed {
				var b struct {
					Term uint64 `json:"term"`
				}
				json.NewDecoder(resp.Body).Decode(&b)
				results <- result{fence: b.Term}
				return
			}
			results <- result{ok: resp.StatusCode == http.StatusOK}
		}(peer)
	}
	for range peers {
		res := <-results
		if res.ok {
			acks++
		}
		if res.fence > fencedBy {
			fencedBy = res.fence
		}
	}
	return acks, fencedBy
}

// maybePromote checks the lease clock and, once this node's staggered
// deadline has passed, claims the next term with a quorum heartbeat.
func (h *HA) maybePromote() {
	age := h.replica.BeatAge()
	if age < h.cfg.LeaseTTL {
		return
	}
	_, leader := h.replica.Term()
	rank := 0
	for _, p := range h.cfg.Peers {
		if p == h.cfg.Self {
			break
		}
		if p != leader {
			rank++ // live candidates ahead of us in promotion order
		}
	}
	if age < h.cfg.LeaseTTL+time.Duration(rank)*h.cfg.PromoteStagger {
		return
	}
	seen, _ := h.replica.Term()
	term := seen + 1
	// The claim is itself the fencing write: peers at an older term
	// adopt this one on receipt, and any peer that knows a newer term
	// rejects it, teaching us. Commit only with a quorum of acks, so
	// two candidates racing the same term cannot both win (the replicas
	// accept one claimant per term).
	acks, fencedBy := h.heartbeatRound(term, h.cfg.Self)
	if fencedBy > term {
		h.logf("fabric: %s promotion to term %d lost to term %d", h.cfg.Self, term, fencedBy)
		h.replica.observe(fencedBy, "")
		return
	}
	if acks < h.cfg.Quorum {
		h.logf("fabric: %s promotion to term %d got %d/%d acks; standing by", h.cfg.Self, term, acks, h.cfg.Quorum)
		return
	}
	if err := h.promote(term); err != nil {
		h.logf("fabric: %s promotion to term %d failed: %v", h.cfg.Self, term, err)
	}
}

// promote takes this node to leader at term.
func (h *HA) promote(term uint64) error {
	var peers []string
	for _, p := range h.cfg.Peers {
		if p != h.cfg.Self {
			peers = append(peers, p)
		}
	}
	repl, err := NewReplicator(ReplicatorConfig{
		Self:     h.cfg.Self,
		Peers:    peers,
		Store:    h.cfg.Store,
		Client:   h.cfg.Client,
		Quorum:   h.cfg.Quorum,
		Attempts: h.cfg.Attempts,
		Backoff:  h.cfg.Backoff,
		Timeout:  h.cfg.Timeout,
		Logf:     h.cfg.Logf,
		OnFenced: func(t uint64) {
			select {
			case h.fenceCh <- t:
			default:
			}
		},
	})
	if err != nil {
		return err
	}
	repl.SetTerm(term)
	h.replica.SetTerm(term, h.cfg.Self)
	demote, err := h.cfg.OnPromote(term, repl)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.role, h.term, h.leader = RoleLeader, term, h.cfg.Self
	h.repl, h.demote = repl, demote
	h.hbAcks = len(peers) // optimistic until the first round reports
	h.mu.Unlock()
	h.logf("fabric: %s promoted to leader at term %d", h.cfg.Self, term)
	// Announce immediately so the standbys' lease clocks reset before
	// their own staggered deadlines fire.
	h.heartbeatRound(term, h.cfg.Self)
	return nil
}

// stepDown demotes a fenced leader: halt the write path, tear down the
// execution plane, rejoin as standby under the new term.
func (h *HA) stepDown(newTerm uint64) {
	h.mu.Lock()
	if h.role != RoleLeader || newTerm <= h.term {
		h.mu.Unlock()
		return
	}
	h.role = RoleFenced
	demote := h.demote
	h.repl, h.demote = nil, nil
	oldTerm := h.term
	h.mu.Unlock()
	h.logf("fabric: %s (term %d) fenced by term %d; demoting", h.cfg.Self, oldTerm, newTerm)
	if demote != nil {
		demote()
	}
	h.replica.observe(newTerm, "")
	h.mu.Lock()
	h.role = RoleStandby
	h.term = newTerm
	h.mu.Unlock()
	h.logf("fabric: %s rejoined as standby at term %d", h.cfg.Self, newTerm)
}

// HAStatus is the controller's /readyz overlay.
type HAStatus struct {
	Role   Role   `json:"role"`
	Term   uint64 `json:"term"`
	Leader string `json:"leader"`
	// BeatAgeMS is how stale the leader's lease is from this node's
	// view (standby) or since this leader's own last accepted write.
	BeatAgeMS int64 `json:"beatAgeMs"`
	// Quorum and QuorumOK report the write-quorum health (leader only:
	// peer acks in the last heartbeat round vs the required quorum).
	Quorum   int  `json:"quorum,omitempty"`
	QuorumOK bool `json:"quorumOk"`
	// Peers is the leader's per-replica lag view.
	Peers []ReplicaPeerStatus `json:"peers,omitempty"`
}

// Status reports the node's role, term and replication health.
func (h *HA) Status() HAStatus {
	h.mu.Lock()
	role, term, repl, hbAcks := h.role, h.term, h.repl, h.hbAcks
	h.mu.Unlock()
	seenTerm, leader := h.replica.Term()
	if seenTerm > term {
		term = seenTerm
	}
	st := HAStatus{
		Role:      role,
		Term:      term,
		Leader:    leader,
		BeatAgeMS: h.replica.BeatAge().Milliseconds(),
		QuorumOK:  true,
	}
	if role == RoleLeader && repl != nil {
		st.Quorum = h.cfg.Quorum
		peers, replOK := repl.Status()
		st.Peers = peers
		st.QuorumOK = replOK && hbAcks >= h.cfg.Quorum
	}
	return st
}

// Role returns the node's current role.
func (h *HA) Role() Role {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.role
}

// Term returns the node's current term (the highest seen).
func (h *HA) Term() uint64 {
	h.mu.Lock()
	term := h.term
	h.mu.Unlock()
	if seen, _ := h.replica.Term(); seen > term {
		return seen
	}
	return term
}

// Handler mounts the node's replication surface (/v1/replica/*) and
// the HA-aware /readyz over an inner handler: the inner report is
// decoded and an "ha" section — role, term, leader, peer lag, quorum
// health — is merged in. A leader that cannot reach a write quorum of
// replicas reports degraded: it is still correct (un-acked checkpoints
// fail loudly) but one disk from losing new work.
func (h *HA) Handler(inner http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	h.replica.Routes(mux)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rec := &readyRecorder{header: make(http.Header), code: http.StatusOK}
		inner.ServeHTTP(rec, r)
		var report map[string]any
		if err := json.Unmarshal(rec.buf.Bytes(), &report); err != nil {
			// Inner /readyz is not JSON (unexpected): pass it through.
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			w.WriteHeader(rec.code)
			w.Write(rec.buf.Bytes())
			return
		}
		st := h.Status()
		report["ha"] = st
		if st.Role == RoleLeader && !st.QuorumOK {
			report["degraded"] = true
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(rec.code)
		w.Write(append(data, '\n'))
	})
	return mux
}

// readyRecorder captures the inner /readyz response for the overlay.
type readyRecorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (r *readyRecorder) Header() http.Header         { return r.header }
func (r *readyRecorder) WriteHeader(code int)        { r.code = code }
func (r *readyRecorder) Write(p []byte) (int, error) { return r.buf.Write(p) }
