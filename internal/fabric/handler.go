package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/api"
)

// Handler mounts the coordinator's distributed /v1/sweep over an inner
// handler (normally api.NewServer of the local service): sweeps fan out
// across the fleet; every other route — point endpoints, /healthz, the
// /v1/jobs lifecycle — falls through to the inner handler unchanged.
func (c *Coordinator) Handler(inner http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	mux.HandleFunc("/v1/sweep", c.handleSweep)
	mux.HandleFunc("/readyz", c.handleReady)
	return mux
}

// handleReady overlays the coordinator's fleet view on the local
// service's readiness report: the node is degraded when the service
// says so (saturated job queue) OR any worker circuit is non-closed —
// sweeps still complete (survivors absorb ranges, local fallback
// covers a dark fleet) but with reduced capacity. /healthz stays a
// plain liveness probe; only /readyz carries the degradation signal.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	st := struct {
		api.ReadyStatus
		Fleet FleetStatus `json:"fleet"`
	}{c.cfg.Service.ReadyStatus(), c.Status()}
	st.Degraded = st.Degraded || st.Fleet.Degraded
	api.WriteReady(w, st)
}

// handleSweep is the coordinator-mode twin of the single-node /v1/sweep
// handler: same request language (the body is normalized through the
// job normalizer, so validation matches), same ?offset=&limit= range
// selection, same streaming and non-streaming response shapes — and, by
// the merge invariants, the same response bytes a single node produces.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST with a JSON body"))
		return
	}
	offset, limit, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	// Normalizing first means the byte payload dispatched to every
	// worker is the canonical request, so worker-side grid expansion
	// and point keys are exactly the coordinator's.
	canonical, total, err := c.cfg.Service.NormalizeJobRequest(body.Bytes())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if offset > total {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: offset %d outside the %d-point grid", offset, total))
		return
	}
	end := total
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}

	var req api.SweepRequest
	if err := json.Unmarshal(canonical, &req); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	keys, err := c.cfg.Service.PointKeys(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	if r.Header.Get("Accept") == api.NDJSONContentType {
		c.streamSweep(w, r, canonical, keys, offset, end)
		return
	}
	items := make([]api.SweepItem, 0, end-offset)
	err = c.run(r.Context(), canonical, keys, offset, end, func(line []byte) error {
		var item api.SweepItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("fabric: worker line undecodable: %w", err)
		}
		items = append(items, item)
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	w.Header().Set(api.HeaderSweepPoints, strconv.Itoa(len(items)))
	writeJSON(w, struct {
		Items []api.SweepItem `json:"items"`
	}{items})
}

// streamSweep streams the merged worker lines as they land — in
// canonical grid order, byte-identical to the single-node stream. Cache
// hit/miss trailers are omitted (they are per-worker facts); the point
// count trailer is kept.
func (c *Coordinator) streamSweep(w http.ResponseWriter, r *http.Request, canonical []byte, keys []string, from, to int) {
	w.Header().Set("Trailer", api.HeaderSweepPoints)
	w.Header().Set("Content-Type", api.NDJSONContentType)
	framed := r.Header.Get(api.HeaderSweepIntegrity) == api.IntegrityCRC32C
	flusher, _ := w.(http.Flusher)
	wrote := 0
	err := c.run(r.Context(), canonical, keys, from, to, func(line []byte) error {
		if err := r.Context().Err(); err != nil {
			return err
		}
		if framed {
			line = api.FrameLine(line)
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		wrote++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if wrote == 0 {
			writeError(w, http.StatusBadGateway, err)
			return
		}
		// Mid-stream failure: mirror the single-node handler's terminal
		// {"error": ...} record so truncation is always detectable.
		json.NewEncoder(w).Encode(struct {
			Error string `json:"error"`
		}{err.Error()})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	w.Header().Set(api.HeaderSweepPoints, strconv.Itoa(wrote))
}

// rangeParams mirrors the single-node ?offset=&limit= parsing so a
// coordinator can itself be dispatched to as a worker tier.
func rangeParams(r *http.Request) (offset, limit int, err error) {
	offset, limit = 0, -1
	if q := r.URL.Query().Get("offset"); q != "" {
		if offset, err = strconv.Atoi(q); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("fabric: offset %q must be a non-negative integer", q)
		}
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		if limit, err = strconv.Atoi(q); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("fabric: limit %q must be a non-negative integer", q)
		}
	}
	return offset, limit, nil
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
