package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// ErrMalformedLine marks a delivered line that violates NDJSON framing
// (empty, missing its trailing newline, or carrying an interior
// newline) — the shape of a torn or spliced delivery. The rejection is
// NOT sticky: the bad delivery is refused, the merger stays healthy,
// and a later intact delivery of the same point merges normally.
var ErrMalformedLine = errors.New("fabric: malformed result line")

// Merger folds concurrently arriving worker result lines back into
// canonical grid order. It accepts (index, line) pairs for the window
// [start, end), emits each index's line exactly once, in index order,
// and dedupes duplicate deliveries — the normal outcome of a stolen
// range racing its original dispatch. Point seeds are content-keyed,
// so every copy of a line carries identical bytes and first-wins
// deduplication is deterministic down to the byte.
//
// The merge invariants the fuzz test pins down:
//
//  1. order:    emitted indices are start, start+1, ..., end-1
//  2. exactly-once: no index is emitted twice, none is skipped
//  3. no invention: an emitted line was Added for that index
type Merger struct {
	mu      sync.Mutex
	next    int // lowest index not yet emitted
	start   int
	end     int
	buffer  map[int][]byte // accepted, not yet emitted (out-of-order arrivals)
	free    [][]byte       // retired line buffers, reused by later accepts
	emit    func(line []byte) error
	hook    func(i int, line []byte) []byte // fault-injection intake hook
	err     error                           // sticky first emit error
	emitted int
}

// NewMerger returns a merger for the window [start, end) whose
// in-order output is handed to emit. emit is called with the merger's
// internal serialization — never concurrently — and the line bytes it
// receives are owned by the merger: they are recycled for later
// deliveries as soon as emit returns, so a consumer that needs them
// past its own return must copy.
func NewMerger(start, end int, emit func(line []byte) error) *Merger {
	return &Merger{next: start, start: start, end: end, buffer: make(map[int][]byte), emit: emit}
}

// SetHook installs a line-intake hook, called on every Add before
// validation with the point index and the delivered bytes; whatever it
// returns is merged in the line's place. It exists for fault injection
// (chaos.Injector.LineHook tears or corrupts deliveries on their way
// in) and must be set before the first Add.
func (m *Merger) SetHook(hook func(i int, line []byte) []byte) {
	m.mu.Lock()
	m.hook = hook
	m.mu.Unlock()
}

// Add accepts the line of grid point i. It returns fresh=false when
// the point was already delivered by another dispatch (the duplicate
// is dropped), ErrMalformedLine (non-sticky) for a torn delivery, and
// the sticky emit error once the downstream consumer has failed. The
// line is copied: callers may reuse their read buffer.
func (m *Merger) Add(i int, line []byte) (fresh bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return false, m.err
	}
	if i < m.start || i >= m.end {
		return false, fmt.Errorf("fabric: point index %d outside merge window [%d, %d)", i, m.start, m.end)
	}
	if m.hook != nil {
		line = m.hook(i, line)
	}
	if n := len(line); n == 0 || line[n-1] != '\n' {
		return false, fmt.Errorf("%w: point %d: no trailing newline in %d bytes", ErrMalformedLine, i, n)
	} else if bytes.IndexByte(line[:n-1], '\n') >= 0 {
		return false, fmt.Errorf("%w: point %d: interior newline", ErrMalformedLine, i)
	}
	if i < m.next {
		return false, nil // already emitted
	}
	if _, ok := m.buffer[i]; ok {
		return false, nil // already accepted, awaiting its turn
	}
	// Copy into a pooled buffer: steady-state merging recycles the
	// buffers of already-emitted lines instead of allocating per point.
	var buf []byte
	if n := len(m.free); n > 0 {
		buf, m.free = m.free[n-1][:0], m.free[:n-1]
	}
	m.buffer[i] = append(buf, line...)
	for {
		line, ok := m.buffer[m.next]
		if !ok {
			break
		}
		if err := m.emit(line); err != nil {
			m.err = err
			return true, err
		}
		delete(m.buffer, m.next)
		m.free = append(m.free, line)
		m.next++
		m.emitted++
	}
	return true, nil
}

// FirstGap returns the first index in [from, to) that has not been
// accepted yet, or `to` when the whole interval is covered. Dispatch
// accounting uses it to requeue exactly the unfinished suffix of a
// range: deliveries stream in index order, so a range's accepted set
// is always a prefix and its gap a suffix.
func (m *Merger) FirstGap(from, to int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := from; i < to; i++ {
		if i < m.next {
			continue
		}
		if _, ok := m.buffer[i]; !ok {
			return i
		}
	}
	return to
}

// Done reports whether every index of the window has been emitted.
func (m *Merger) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next >= m.end
}

// Err returns the sticky downstream error, if any.
func (m *Merger) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}
