package failure

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDomainSpecValidate(t *testing.T) {
	good := DomainSpec{Size: 4, Rate: 1e-4}
	if err := good.Validate(16); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []struct {
		name string
		spec DomainSpec
		n    int
	}{
		{"zero size", DomainSpec{Size: 0, Rate: 1}, 16},
		{"size beyond platform", DomainSpec{Size: 32, Rate: 1}, 16},
		{"non-dividing size", DomainSpec{Size: 5, Rate: 1}, 16},
		{"negative rate", DomainSpec{Size: 4, Rate: -1}, 16},
		{"NaN rate", DomainSpec{Size: 4, Rate: math.NaN()}, 16},
		{"Inf rate", DomainSpec{Size: 4, Rate: math.Inf(1)}, 16},
	}
	for _, tc := range bad {
		if err := tc.spec.Validate(tc.n); err == nil {
			t.Errorf("%s: should fail validation", tc.name)
		}
	}
}

func TestCorrelationValidate(t *testing.T) {
	var nilCorr *Correlation
	if err := nilCorr.Validate(16); err != nil {
		t.Fatalf("nil correlation rejected: %v", err)
	}
	if !nilCorr.IID() {
		t.Fatal("nil correlation is i.i.d.")
	}
	if !(&Correlation{}).IID() {
		t.Fatal("empty correlation is i.i.d.")
	}
	if (&Correlation{Groups: []float64{2, 1}}).IID() {
		t.Fatal("grouped correlation is not i.i.d.")
	}
	bad := []*Correlation{
		{Domains: &DomainSpec{Size: 5, Rate: 1}},
		{Groups: []float64{1, 2, 3}},              // 3 does not divide 16
		{Groups: []float64{1, -1}},                // non-positive weight
		{Groups: []float64{1, math.NaN()}},        // non-finite weight
		{Groups: []float64{math.Inf(1), 1, 1, 1}}, // non-finite weight
	}
	for i, c := range bad {
		if err := c.Validate(16); err == nil {
			t.Errorf("correlation %d should fail validation", i)
		}
	}
}

// TestDomainsBurstMembership checks that every burst fells exactly the
// members of one domain at the identical instant, under both block and
// stripe placement.
func TestDomainsBurstMembership(t *testing.T) {
	const n, size = 16, 4
	num := n / size
	for _, stripe := range []bool{false, true} {
		// No background: bursts only (tiny platform to force bursts
		// before any background failure is unnecessary — drop bg noise
		// entirely with an exhausted replay).
		bg := NewReplay(nil)
		parent := rng.New(77)
		d := NewDomains(n, DomainSpec{Size: size, Rate: 0.01, Stripe: stripe}, bg, parent)
		for burst := 0; burst < 200; burst++ {
			first, ok := d.Next()
			if !ok {
				t.Fatal("burst-only source exhausted")
			}
			members := map[int]bool{first.Node: true}
			for k := 1; k < size; k++ {
				ev, ok := d.Next()
				if !ok || ev.Time != first.Time {
					t.Fatalf("stripe=%v burst %d member %d: time %v != %v", stripe, burst, k, ev.Time, first.Time)
				}
				members[ev.Node] = true
			}
			if len(members) != size {
				t.Fatalf("stripe=%v burst %d felled %d distinct nodes, want %d", stripe, burst, len(members), size)
			}
			// All members must belong to the same domain.
			var dom int
			if stripe {
				dom = first.Node % num
			} else {
				dom = first.Node / size
			}
			for node := range members {
				got := node / size
				if stripe {
					got = node % num
				}
				if got != dom {
					t.Fatalf("stripe=%v node %d outside domain %d", stripe, node, dom)
				}
			}
		}
	}
}

// TestDomainsMergeOrder checks the superposition: burst events and
// background events interleave in non-decreasing time order.
func TestDomainsMergeOrder(t *testing.T) {
	const n = 32
	parent := rng.New(5)
	bg := NewMerged(n, 100, parent)
	d := NewDomains(n, DomainSpec{Size: 8, Rate: 1.0 / 400}, bg, parent)
	last := 0.0
	sawBurst := false
	prev := Event{Time: -1}
	for i := 0; i < 20000; i++ {
		ev, ok := d.Next()
		if !ok {
			t.Fatal("generative source exhausted")
		}
		if ev.Time < last {
			t.Fatalf("event %d at %v before %v", i, ev.Time, last)
		}
		if ev.Time == prev.Time && prev.Time >= 0 {
			sawBurst = true
		}
		last, prev = ev.Time, ev
	}
	if !sawBurst {
		t.Fatal("no simultaneous burst events observed")
	}
}

// TestDomainsReseedReproduces pins the in-place reseed contract the
// simulator's reusable engines rely on: after reseeding both the
// background and the burst process, the merged sequence replays a
// fresh construction bit for bit.
func TestDomainsReseedReproduces(t *testing.T) {
	const n = 16
	spec := DomainSpec{Size: 4, Rate: 1.0 / 300}

	parentA := rng.New(1)
	bgA := NewMerged(n, 90, parentA)
	reused := NewDomains(n, spec, bgA, parentA)
	for i := 0; i < 500; i++ {
		reused.Next()
	}
	bgA.Reseed(42)
	reused.Reseed(parentA)

	parentB := rng.New(42)
	bgB := NewMerged(n, 90, parentB)
	fresh := NewDomains(n, spec, bgB, parentB)

	for i := 0; i < 2000; i++ {
		a, _ := reused.Next()
		b, _ := fresh.Next()
		if a != b {
			t.Fatalf("event %d: reseeded %+v != fresh %+v", i, a, b)
		}
	}
}

// TestDomainsRateZeroIsBitwiseBackground pins the degenerate oracle:
// with burst rate 0, wrapping a background source changes nothing —
// the merged sequence is bitwise the background's own.
func TestDomainsRateZeroIsBitwiseBackground(t *testing.T) {
	const n = 64
	parent := rng.New(9)
	bg := NewMerged(n, 120, parent)
	d := NewDomains(n, DomainSpec{Size: 8, Rate: 0}, bg, parent)

	plain := NewMerged(n, 120, rng.New(9))
	for i := 0; i < 5000; i++ {
		a, _ := d.Next()
		b, _ := plain.Next()
		if a != b {
			t.Fatalf("event %d: wrapped %+v != plain %+v", i, a, b)
		}
	}
}

// TestDomainsBurstRate checks the burst process's aggregate intensity:
// bursts arrive at spec.Rate platform-wide, uniform over domains.
func TestDomainsBurstRate(t *testing.T) {
	const n, size = 32, 8
	const rate = 1.0 / 50
	bg := NewReplay(nil)
	d := NewDomains(n, DomainSpec{Size: size, Rate: rate}, bg, rng.New(31))
	const bursts = 20000
	var last float64
	counts := make(map[int]int)
	for i := 0; i < bursts; i++ {
		first, ok := d.Next()
		if !ok {
			t.Fatal("burst source exhausted")
		}
		for k := 1; k < size; k++ {
			d.Next()
		}
		last = first.Time
		counts[first.Node/size]++
	}
	gotMTBB := last / bursts
	if math.Abs(gotMTBB-1/rate) > 0.03/rate {
		t.Fatalf("observed mean time between bursts %v, want %v", gotMTBB, 1/rate)
	}
	want := float64(bursts) / float64(n/size)
	for dom, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("domain %d hit %d times, want ~%v", dom, c, want)
		}
	}
}

// TestGroupLawsPreservesPlatformRate checks the heterogeneous-MTBF
// normalization: per-node rates redistribute by weight while the
// platform aggregate Σ 1/Mind stays exactly 1/M.
func TestGroupLawsPreservesPlatformRate(t *testing.T) {
	const n = 12
	const m = 100.0
	laws, err := GroupLaws(n, m, []float64{4, 2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(laws) != n {
		t.Fatalf("got %d laws, want %d", len(laws), n)
	}
	sum := 0.0
	for _, law := range laws {
		sum += 1 / law.Mean()
	}
	if math.Abs(sum-1/m) > 1e-12 {
		t.Fatalf("platform rate %v, want %v", sum, 1/m)
	}
	// Group blocks are contiguous and ordered by the weight slice:
	// nodes 0-3 get weight 4 (the most reliable), nodes 8-11 weight 1.
	if laws[0].Mean() != 4*laws[8].Mean() {
		t.Fatalf("weight-4 MTBF %v should be 4× weight-1 MTBF %v", laws[0].Mean(), laws[8].Mean())
	}
	if laws[3].Mean() != laws[0].Mean() || laws[4].Mean() != laws[7].Mean() {
		t.Fatal("group blocks are not contiguous")
	}
	// Equal weights degenerate to the uniform model.
	uniform, err := GroupLaws(8, m, []float64{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, law := range uniform {
		if math.Abs(law.Mean()-8*m) > 1e-9 {
			t.Fatalf("uniform-weight node MTBF %v, want %v", law.Mean(), 8*m)
		}
	}
}

// TestGroupLawsKeepsFamily checks that shape parameters survive the
// rescale across the supported families.
func TestGroupLawsKeepsFamily(t *testing.T) {
	laws, err := GroupLaws(4, 100, []float64{3, 1}, Weibull{Shape: 0.7, MTBF: 999})
	if err != nil {
		t.Fatal(err)
	}
	w, ok := laws[0].(Weibull)
	if !ok || w.Shape != 0.7 {
		t.Fatalf("Weibull shape lost: %+v", laws[0])
	}
	laws, err = GroupLaws(4, 100, []float64{3, 1}, LogNormal{Sigma: 0.5, MTBF: 999})
	if err != nil {
		t.Fatal(err)
	}
	l, ok := laws[0].(LogNormal)
	if !ok || l.Sigma != 0.5 {
		t.Fatalf("LogNormal sigma lost: %+v", laws[0])
	}
	if _, err := GroupLaws(3, 100, []float64{1, 1}, nil); err == nil {
		t.Fatal("non-dividing group count should fail")
	}
}
