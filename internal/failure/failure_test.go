package failure

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMTBFAlgebra(t *testing.T) {
	if got := PlatformMTBF(50*365*24*3600, 1_000_000); math.Abs(got-50*365*24*3600/1e6) > 1e-9 {
		t.Fatalf("PlatformMTBF = %v", got)
	}
	// Round trip.
	ind := 7.0 * 24 * 3600
	if got := IndividualMTBF(PlatformMTBF(ind, 1234), 1234); math.Abs(got-ind) > 1e-6 {
		t.Fatalf("MTBF round trip = %v, want %v", got, ind)
	}
}

func TestLawMeans(t *testing.T) {
	s := rng.New(1)
	laws := []Law{
		Exponential{MTBF: 100},
		Weibull{Shape: 0.7, MTBF: 100},
		Weibull{Shape: 2, MTBF: 100},
		LogNormal{MTBF: 100, Sigma: 0.5},
	}
	const n = 300000
	for _, law := range laws {
		if law.Mean() != 100 {
			t.Errorf("%s: declared mean %v, want 100", law.Name(), law.Mean())
		}
		var sum float64
		for i := 0; i < n; i++ {
			x := law.Sample(s)
			if x < 0 {
				t.Fatalf("%s: negative sample %v", law.Name(), x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-100) > 3 {
			t.Errorf("%s: empirical mean %v, want ~100", law.Name(), mean)
		}
	}
}

func TestLawNames(t *testing.T) {
	if (Exponential{}).Name() != "exponential" {
		t.Error("exponential name")
	}
	if (Weibull{Shape: 0.7}).Name() != "weibull(0.7)" {
		t.Errorf("weibull name = %s", (Weibull{Shape: 0.7}).Name())
	}
	if (LogNormal{Sigma: 0.5}).Name() != "lognormal(0.5)" {
		t.Errorf("lognormal name = %s", LogNormal{Sigma: 0.5}.Name())
	}
}

func TestMergedRate(t *testing.T) {
	// The merged process over n nodes with platform MTBF M must
	// produce failures at rate 1/M, with victims uniform over nodes.
	s := rng.New(5)
	const n, m = 64, 120.0
	src := NewMerged(n, m, s)
	const events = 200000
	var last float64
	counts := make([]int, n)
	for i := 0; i < events; i++ {
		ev, ok := src.Next()
		if !ok {
			t.Fatal("merged source exhausted")
		}
		if ev.Time <= last {
			t.Fatalf("non-increasing failure times: %v after %v", ev.Time, last)
		}
		last = ev.Time
		counts[ev.Node]++
	}
	gotMTBF := last / events
	if math.Abs(gotMTBF-m) > 0.02*m {
		t.Fatalf("observed platform MTBF %v, want %v", gotMTBF, m)
	}
	want := float64(events) / n
	for node, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d hit %d times, want ~%v", node, c, want)
		}
	}
}

func TestMergedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMerged with bad params should panic")
		}
	}()
	NewMerged(0, 100, rng.New(1))
}

func TestRenewalMatchesMergedForExponential(t *testing.T) {
	// For Exponential laws the renewal process and the merged process
	// have the same platform rate; compare observed MTBFs.
	const n = 32
	const ind = 3200.0 // individual MTBF => platform MTBF 100
	ren := NewRenewalUniform(n, Exponential{MTBF: ind}, rng.New(7))
	const events = 100000
	var last float64
	for i := 0; i < events; i++ {
		ev, ok := ren.Next()
		if !ok {
			t.Fatal("renewal exhausted")
		}
		if ev.Time < last {
			t.Fatalf("renewal times decreased: %v < %v", ev.Time, last)
		}
		last = ev.Time
		if ev.Node < 0 || ev.Node >= n {
			t.Fatalf("bad node %d", ev.Node)
		}
	}
	gotMTBF := last / events
	if math.Abs(gotMTBF-100) > 3 {
		t.Fatalf("renewal platform MTBF = %v, want ~100", gotMTBF)
	}
}

func TestRenewalHeterogeneous(t *testing.T) {
	// A node with a tiny MTBF must dominate the failure log.
	laws := []Law{
		Exponential{MTBF: 10},
		Exponential{MTBF: 10000},
		Exponential{MTBF: 10000},
	}
	ren := NewRenewal(laws, rng.New(11))
	counts := make([]int, 3)
	for i := 0; i < 5000; i++ {
		ev, _ := ren.Next()
		counts[ev.Node]++
	}
	if counts[0] < 4500 {
		t.Fatalf("fragile node hit only %d/5000 times", counts[0])
	}
}

func TestReplayAndRecorder(t *testing.T) {
	src := NewMerged(8, 50, rng.New(3))
	rec := &Recorder{Inner: src}
	var events []Event
	for i := 0; i < 100; i++ {
		ev, ok := rec.Next()
		if !ok {
			t.Fatal("source exhausted")
		}
		events = append(events, ev)
	}
	if len(rec.Log) != 100 {
		t.Fatalf("recorder kept %d events, want 100", len(rec.Log))
	}
	rep := NewReplay(rec.Log)
	for i := 0; i < 100; i++ {
		ev, ok := rep.Next()
		if !ok || ev != events[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, ev, events[i])
		}
	}
	if _, ok := rep.Next(); ok {
		t.Fatal("replay should exhaust after the trace")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	src := NewMerged(16, 30, rng.New(9))
	tr := Collect(src, 16, 30, "exponential", 10000)
	if len(tr.Events) == 0 {
		t.Fatal("collected no events")
	}
	if !tr.Sorted() {
		t.Fatal("collected trace not sorted")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes != tr.Nodes || back.PlatformMTBF != tr.PlatformMTBF || back.Law != tr.Law {
		t.Fatal("trace metadata did not round-trip")
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(back.Events), len(tr.Events))
	}
	for i := range back.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestTraceValidateRejectsBadData(t *testing.T) {
	bad := []Trace{
		{Nodes: 0},
		{Nodes: 4, Events: []Event{{Time: 5, Node: 0}, {Time: 1, Node: 0}}},
		{Nodes: 4, Events: []Event{{Time: 1, Node: 4}}},
		{Nodes: 4, Events: []Event{{Time: 1, Node: -1}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("trace %d should fail validation", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("{")); err == nil {
		t.Fatal("truncated JSON should fail")
	}
	if _, err := ReadTrace(bytes.NewBufferString(`{"nodes":0,"events":[]}`)); err == nil {
		t.Fatal("invalid trace should fail validation on read")
	}
}

func TestCollectHorizon(t *testing.T) {
	src := NewMerged(4, 10, rng.New(21))
	tr := Collect(src, 4, 10, "exponential", 500)
	for _, ev := range tr.Events {
		if ev.Time > 500 {
			t.Fatalf("event at %v beyond horizon", ev.Time)
		}
	}
	if len(tr.Events) < 20 {
		t.Fatalf("suspiciously few events: %d", len(tr.Events))
	}
}

func TestWeibullScale(t *testing.T) {
	w := Weibull{Shape: 1, MTBF: 42}
	if math.Abs(w.Scale()-42) > 1e-9 {
		t.Fatalf("shape-1 Weibull scale = %v, want mean %v", w.Scale(), 42.0)
	}
}

// TestMergedNextZeroAllocs pins the exponential fast path's allocation
// contract: drawing platform failures allocates nothing.
func TestMergedNextZeroAllocs(t *testing.T) {
	src := NewMerged(1024, 1800, rng.New(3))
	avg := testing.AllocsPerRun(1000, func() {
		src.Next()
	})
	if avg != 0 {
		t.Fatalf("Merged.Next allocates %v per event, want 0", avg)
	}
}

// TestMergedReseedReproduces checks the in-place reseed used by the
// simulator's reusable engines: after Reseed(s), a Merged replays
// exactly the sequence a fresh NewMerged with seed s produces.
func TestMergedReseedReproduces(t *testing.T) {
	reused := NewMerged(64, 120, rng.New(1))
	for i := 0; i < 100; i++ { // advance past the initial state
		reused.Next()
	}
	reused.Reseed(42)
	fresh := NewMerged(64, 120, rng.New(42))
	for i := 0; i < 1000; i++ {
		a, _ := reused.Next()
		b, _ := fresh.Next()
		if a != b {
			t.Fatalf("event %d: reseeded %+v != fresh %+v", i, a, b)
		}
	}
}

// TestRenewalReseedReproduces is the same contract for the renewal
// process: an in-place Reseed replays a fresh construction bit for
// bit, with the queue and per-node streams reused.
func TestRenewalReseedReproduces(t *testing.T) {
	law := Weibull{Shape: 0.7, MTBF: 3200}
	reused := NewRenewalUniform(16, law, rng.New(1))
	for i := 0; i < 100; i++ {
		reused.Next()
	}
	reused.Reseed(rng.New(42))
	fresh := NewRenewalUniform(16, law, rng.New(42))
	for i := 0; i < 1000; i++ {
		a, _ := reused.Next()
		b, _ := fresh.Next()
		if a != b {
			t.Fatalf("event %d: reseeded %+v != fresh %+v", i, a, b)
		}
	}
}

// TestRenewalNextZeroAllocs pins the renewal path's steady-state
// allocation contract (value-typed event queue, no boxing).
func TestRenewalNextZeroAllocs(t *testing.T) {
	ren := NewRenewalUniform(256, Weibull{Shape: 0.7, MTBF: 3200}, rng.New(9))
	avg := testing.AllocsPerRun(1000, func() {
		ren.Next()
	})
	if avg != 0 {
		t.Fatalf("Renewal.Next allocates %v per event, want 0", avg)
	}
}
