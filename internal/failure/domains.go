package failure

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// domainStreamIndex is the ReseedSplit child index reserved for the
// domain burst process. Per-node renewal streams split from the same
// parent at indices 0..n-1; keeping the burst stream far outside any
// plausible node count guarantees the two can never collide (a
// collision would make the burst inter-arrivals bitwise identical to
// one node's renewals).
const domainStreamIndex = 1 << 32

// DomainSpec configures spatially correlated failure domains: the
// platform is partitioned into n/Size domains (racks, switches, PSU
// groups), and a domain-level Poisson process of platform-wide rate
// Rate fells every member of one uniformly chosen domain at once.
type DomainSpec struct {
	// Size is the number of nodes per domain; it must divide the
	// platform size.
	Size int `json:"size"`
	// Rate is the platform-wide burst rate in failures per second
	// (bursts hit a uniformly random domain). Zero disables bursts,
	// degenerating to the background i.i.d. process exactly.
	Rate float64 `json:"rate"`
	// Stripe interleaves domain membership across the node index space
	// (domain d = {d, d+K, d+2K, ...} for K = n/Size domains) instead
	// of the default contiguous blocks (domain d = [d·Size, (d+1)·Size)).
	// Blocks align with the cluster's contiguous buddy groups, so a
	// burst takes out a whole buddy group (fatal); stripes spread each
	// domain across groups, so buddies survive to restore. The gap
	// between the two is the placement-sensitivity axis.
	Stripe bool `json:"stripe,omitempty"`
}

// Validate checks the spec against a platform of n nodes.
func (d *DomainSpec) Validate(n int) error {
	if d.Size < 1 || d.Size > n {
		return fmt.Errorf("failure: domain size %d outside [1, %d]", d.Size, n)
	}
	if n%d.Size != 0 {
		return fmt.Errorf("failure: domain size %d does not divide %d nodes", d.Size, n)
	}
	if !finite(d.Rate) || d.Rate < 0 {
		return fmt.Errorf("failure: domain burst rate %v is not finite and non-negative", d.Rate)
	}
	return nil
}

// Correlation bundles the ways a scenario leaves the i.i.d. world:
// correlated failure domains and heterogeneous per-group MTBFs. A nil
// *Correlation (or one with both fields unset) means the classic
// independent-renewals model. It is carried by pointer inside sim
// configs so those configs stay comparable (they key memo maps).
type Correlation struct {
	Domains *DomainSpec `json:"domains,omitempty"`
	// Groups gives relative per-group individual-MTBF weights; the
	// platform is split into len(Groups) contiguous equal blocks and
	// the weights are normalized so the platform failure rate 1/M is
	// preserved (see GroupLaws).
	Groups []float64 `json:"groups,omitempty"`
}

// Validate checks the correlation settings against n nodes.
func (c *Correlation) Validate(n int) error {
	if c == nil {
		return nil
	}
	if c.Domains != nil {
		if err := c.Domains.Validate(n); err != nil {
			return err
		}
	}
	if len(c.Groups) > 0 {
		if n%len(c.Groups) != 0 {
			return fmt.Errorf("failure: %d MTBF groups do not divide %d nodes", len(c.Groups), n)
		}
		for i, w := range c.Groups {
			if !finite(w) || w <= 0 {
				return fmt.Errorf("failure: MTBF group %d weight %v is not finite and positive", i, w)
			}
		}
	}
	return nil
}

// IID reports whether the correlation settings are absent or empty, in
// which case every backend may keep its independent-renewals fast path.
func (c *Correlation) IID() bool {
	return c == nil || (c.Domains == nil && len(c.Groups) == 0)
}

// GroupLaws builds the per-node law slice for heterogeneous per-group
// MTBFs: the n nodes are split into len(weights) contiguous equal
// blocks, node MTBFs are proportional to their group's weight, and the
// common scale is chosen so the platform failure rate Σᵢ 1/Mindᵢ stays
// exactly 1/platformMTBF — the same aggregate intensity as the uniform
// model, redistributed. base carries the law family (shape/sigma); a
// nil base means Exponential.
func GroupLaws(n int, platformMTBF float64, weights []float64, base Law) ([]Law, error) {
	g := len(weights)
	if g < 1 || n%g != 0 {
		return nil, fmt.Errorf("failure: %d MTBF groups do not divide %d nodes", g, n)
	}
	invSum := 0.0
	for i, w := range weights {
		if !finite(w) || w <= 0 {
			return nil, fmt.Errorf("failure: MTBF group %d weight %v is not finite and positive", i, w)
		}
		invSum += 1 / w
	}
	// With Mindᵢ = c·w_g and n/g nodes per group, Σ 1/Mind = 1/M gives
	// c = M·(n/g)·Σ(1/w).
	c := platformMTBF * float64(n/g) * invSum
	per := n / g
	laws := make([]Law, n)
	for i := range laws {
		law, err := scaleLaw(base, c*weights[i/per])
		if err != nil {
			return nil, err
		}
		laws[i] = law
	}
	return laws, nil
}

// scaleLaw returns a copy of base with its mean set to mtbf, keeping
// the family's shape parameters.
func scaleLaw(base Law, mtbf float64) (Law, error) {
	switch l := base.(type) {
	case nil:
		return Exponential{MTBF: mtbf}, nil
	case Exponential:
		return Exponential{MTBF: mtbf}, nil
	case Weibull:
		return Weibull{Shape: l.Shape, MTBF: mtbf}, nil
	case LogNormal:
		return LogNormal{MTBF: mtbf, Sigma: l.Sigma}, nil
	default:
		return nil, fmt.Errorf("failure: cannot rescale law %s for MTBF groups", base.Name())
	}
}

// Domains superposes a domain-level burst process on a background
// failure source: bursts arrive as a Poisson process of rate
// spec.Rate, each felling every member of a uniformly chosen domain at
// the same instant, merged in time order with the background's
// independent per-node failures. With Rate 0 it is a bitwise
// pass-through of the background sequence (the degenerate-correlation
// oracle relies on this).
type Domains struct {
	size    int
	num     int
	stripe  bool
	rate    float64
	bg      Source
	stream  rng.Stream
	next    float64 // absolute time of the next burst (+Inf when disabled)
	pending []Event // members of the current burst not yet emitted
	look    Event   // buffered background event
	have    bool
	done    bool
}

// NewDomains wraps bg with the burst process of spec for an n-node
// platform. The burst stream is split from parent without advancing
// it, so the background's own draws are unperturbed. spec must have
// been validated against n.
func NewDomains(n int, spec DomainSpec, bg Source, parent *rng.Stream) *Domains {
	d := &Domains{
		size:    spec.Size,
		num:     n / spec.Size,
		stripe:  spec.Stripe,
		rate:    spec.Rate,
		bg:      bg,
		pending: make([]Event, 0, spec.Size),
	}
	d.Reseed(parent)
	return d
}

// Reseed rewinds the burst process for a fresh run: the burst stream
// is re-derived from parent (without advancing it) and the first burst
// rescheduled. The caller reseeds bg itself beforehand.
func (d *Domains) Reseed(parent *rng.Stream) {
	d.stream.ReseedSplit(parent, domainStreamIndex)
	d.pending = d.pending[:0]
	d.have = false
	d.done = false
	d.next = infOr(d.rate, &d.stream, 0)
}

// infOr returns now + an exponential draw at rate, or +Inf for a
// non-positive rate (no division by zero, no stream consumption).
func infOr(rate float64, s *rng.Stream, now float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return now + s.Exponential(rate)
}

// Next returns the earlier of the next background failure and the next
// burst. A burst emits all members of its domain sequentially at the
// identical burst time, in ascending node order.
func (d *Domains) Next() (Event, bool) {
	if len(d.pending) > 0 {
		ev := d.pending[0]
		d.pending = d.pending[1:]
		return ev, true
	}
	if !d.have && !d.done {
		if ev, ok := d.bg.Next(); ok {
			d.look, d.have = ev, true
		} else {
			d.done = true
		}
	}
	if d.have && d.look.Time <= d.next {
		d.have = false
		return d.look, true
	}
	if !math.IsInf(d.next, 1) {
		t := d.next
		dom := d.stream.Intn(d.num)
		d.next = infOr(d.rate, &d.stream, t)
		d.pending = d.pending[:0]
		for k := 0; k < d.size; k++ {
			node := dom*d.size + k
			if d.stripe {
				node = dom + k*d.num
			}
			d.pending = append(d.pending, Event{Time: t, Node: node})
		}
		ev := d.pending[0]
		d.pending = d.pending[1:]
		return ev, true
	}
	return Event{}, false
}

// CoverageHorizon forwards the background's coverage when it is
// bounded (a replayed trace under bursts stays bounded by the trace).
func (d *Domains) CoverageHorizon() float64 {
	if b, ok := d.bg.(Bounded); ok {
		return b.CoverageHorizon()
	}
	return math.Inf(1)
}
