package failure

import (
	"testing"

	"repro/internal/rng"
)

// TestFillEventsMatchesNext pins the batched refill's contract: one
// FillEvents call produces bit for bit the event sequence the same
// number of Next calls would, including across refill boundaries and
// for reflected streams — the stream is consumed in the identical
// per-event order, only the log evaluations are deferred.
func TestFillEventsMatchesNext(t *testing.T) {
	for _, reflected := range []bool{false, true} {
		var sa, sb rng.Stream
		sa.SetReflected(reflected)
		sb.SetReflected(reflected)
		a := NewMerged(100, 1800, &sa)
		b := NewMerged(100, 1800, &sb)
		a.Reseed(9)
		b.Reseed(9)
		const batch = 17
		times := make([]float64, batch)
		nodes := make([]int32, batch)
		us := make([]float64, batch)
		for refill := 0; refill < 5; refill++ {
			a.FillEvents(times, nodes, us)
			for k := 0; k < batch; k++ {
				ev, ok := b.Next()
				if !ok {
					t.Fatal("merged source exhausted")
				}
				if times[k] != ev.Time || int(nodes[k]) != ev.Node {
					t.Fatalf("reflected=%v refill %d event %d: batched (%v, %d) != Next (%v, %d)",
						reflected, refill, k, times[k], nodes[k], ev.Time, ev.Node)
				}
			}
		}
	}
}

// TestFillEventsZigguratDeterministic: the ziggurat refill is a pure
// function of the seed — equal seeds replay the exact event sequence,
// and times are strictly increasing (a sanity bound on the clock
// accumulation).
func TestFillEventsZigguratDeterministic(t *testing.T) {
	run := func() ([]float64, []int32) {
		var s rng.Stream
		m := NewMerged(64, 450, &s)
		m.Reseed(4242)
		times := make([]float64, 96)
		nodes := make([]int32, 96)
		m.FillEventsZiggurat(times[:48], nodes[:48])
		m.FillEventsZiggurat(times[48:], nodes[48:])
		return times, nodes
	}
	t1, n1 := run()
	t2, n2 := run()
	prev := 0.0
	for k := range t1 {
		if t1[k] != t2[k] || n1[k] != n2[k] {
			t.Fatalf("event %d differs across identical seeds: (%v, %d) != (%v, %d)",
				k, t1[k], n1[k], t2[k], n2[k])
		}
		if t1[k] < prev {
			t.Fatalf("event %d: time %v before predecessor %v", k, t1[k], prev)
		}
		prev = t1[k]
		if n1[k] < 0 || n1[k] >= 64 {
			t.Fatalf("event %d: victim %d out of range", k, n1[k])
		}
	}
}
