package failure

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Trace is a serializable failure log with its platform metadata, the
// unit exchanged by `cmd/simulate -record` / `-replay`, imported from
// real failure archives by `cmd/trace`, and replayed as a first-class
// scenario backend through the trace registry of `cmd/serve -traces`.
type Trace struct {
	// Nodes is the platform size the trace was generated for.
	Nodes int `json:"nodes"`
	// PlatformMTBF is the platform MTBF in seconds (informational).
	PlatformMTBF float64 `json:"platform_mtbf"`
	// Law names the generating law (informational).
	Law string `json:"law"`
	// Horizon is the absolute time the log is complete up to: the
	// recorder (or the archive's observation window) saw every failure
	// in [0, Horizon], so silence past the last event and up to Horizon
	// means "no failures", while anything beyond Horizon is unknown. A
	// zero Horizon marks a legacy trace recorded before the field
	// existed; such traces cover only [0, last event].
	Horizon float64 `json:"horizon,omitempty"`
	// Events is the time-ordered failure log.
	Events []Event `json:"events"`
}

// finite reports whether f is neither NaN nor infinite.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Validate checks the structural invariants a simulator relies on:
// non-decreasing finite times, node indices within range, finite
// non-negative metadata, and a horizon covering every event.
//
// Rejecting non-finite times explicitly matters: a NaN event time
// satisfies neither `t < prev` nor `t >= prev`, so a pure ordering
// check silently admits it — and every comparison downstream (the
// simulator's advance-to-failure loop included) then misbehaves.
func (tr *Trace) Validate() error {
	if tr.Nodes < 1 {
		return fmt.Errorf("failure: trace has %d nodes", tr.Nodes)
	}
	if !finite(tr.PlatformMTBF) || tr.PlatformMTBF < 0 {
		return fmt.Errorf("failure: trace platform MTBF %v is not finite and non-negative", tr.PlatformMTBF)
	}
	if !finite(tr.Horizon) || tr.Horizon < 0 {
		return fmt.Errorf("failure: trace horizon %v is not finite and non-negative", tr.Horizon)
	}
	prev := 0.0
	for i, ev := range tr.Events {
		if !finite(ev.Time) || ev.Time < 0 {
			return fmt.Errorf("failure: trace event %d at non-finite or negative time %v", i, ev.Time)
		}
		if ev.Time < prev {
			return fmt.Errorf("failure: trace event %d at %v is before %v", i, ev.Time, prev)
		}
		if ev.Node < 0 || ev.Node >= tr.Nodes {
			return fmt.Errorf("failure: trace event %d hits node %d of %d", i, ev.Node, tr.Nodes)
		}
		prev = ev.Time
	}
	if tr.Horizon > 0 && tr.Horizon < prev {
		return fmt.Errorf("failure: trace horizon %v is before its last event at %v", tr.Horizon, prev)
	}
	return nil
}

// Coverage returns the absolute time the trace's silence is meaningful
// up to: the recorded Horizon, or — for legacy traces without one —
// the last event time (the only coverage such a log can vouch for).
func (tr *Trace) Coverage() float64 {
	if tr.Horizon > 0 {
		return tr.Horizon
	}
	if n := len(tr.Events); n > 0 {
		return tr.Events[n-1].Time
	}
	return 0
}

// Sorted returns whether the events are in non-decreasing time order.
func (tr *Trace) Sorted() bool {
	return sort.SliceIsSorted(tr.Events, func(i, j int) bool {
		return tr.Events[i].Time < tr.Events[j].Time
	})
}

// Write encodes the trace as JSON.
func (tr *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// ReadTrace decodes a JSON trace and validates it. The document must
// be exactly one JSON value: json.Decoder.Decode stops at the end of
// the first value, so without an explicit EOF check a truncated upload
// glued to garbage — or two concatenated traces — would silently pass
// with the garbage ignored.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("failure: decoding trace: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("failure: trailing data after trace document")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Collect draws events from src until the horizon and returns them as
// a trace, with the horizon recorded so replays know how far the log's
// silence is meaningful. It is the recording path of cmd/simulate.
func Collect(src Source, nodes int, platformMTBF float64, law string, horizon float64) *Trace {
	tr := &Trace{Nodes: nodes, PlatformMTBF: platformMTBF, Law: law, Horizon: horizon}
	for {
		ev, ok := src.Next()
		if !ok || ev.Time > horizon {
			return tr
		}
		tr.Events = append(tr.Events, ev)
	}
}
