package failure

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Trace is a serializable failure log with its platform metadata, the
// unit exchanged by `cmd/simulate -record` and `-replay`.
type Trace struct {
	// Nodes is the platform size the trace was generated for.
	Nodes int `json:"nodes"`
	// PlatformMTBF is the platform MTBF in seconds (informational).
	PlatformMTBF float64 `json:"platform_mtbf"`
	// Law names the generating law (informational).
	Law string `json:"law"`
	// Events is the time-ordered failure log.
	Events []Event `json:"events"`
}

// Validate checks the structural invariants a simulator relies on:
// non-decreasing times, node indices within range.
func (tr *Trace) Validate() error {
	if tr.Nodes < 1 {
		return fmt.Errorf("failure: trace has %d nodes", tr.Nodes)
	}
	prev := 0.0
	for i, ev := range tr.Events {
		if ev.Time < prev {
			return fmt.Errorf("failure: trace event %d at %v is before %v", i, ev.Time, prev)
		}
		if ev.Node < 0 || ev.Node >= tr.Nodes {
			return fmt.Errorf("failure: trace event %d hits node %d of %d", i, ev.Node, tr.Nodes)
		}
		prev = ev.Time
	}
	return nil
}

// Sorted returns whether the events are in non-decreasing time order.
func (tr *Trace) Sorted() bool {
	return sort.SliceIsSorted(tr.Events, func(i, j int) bool {
		return tr.Events[i].Time < tr.Events[j].Time
	})
}

// Write encodes the trace as JSON.
func (tr *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// ReadTrace decodes a JSON trace and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("failure: decoding trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Collect draws events from src until the horizon and returns them as
// a trace. It is the recording path of cmd/simulate.
func Collect(src Source, nodes int, platformMTBF float64, law string, horizon float64) *Trace {
	tr := &Trace{Nodes: nodes, PlatformMTBF: platformMTBF, Law: law}
	for {
		ev, ok := src.Next()
		if !ok || ev.Time > horizon {
			return tr
		}
		tr.Events = append(tr.Events, ev)
	}
}
