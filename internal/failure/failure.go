// Package failure models node failures: the failure laws
// (Exponential, as assumed by the paper; Weibull and LogNormal for the
// related-work comparisons of §VII), per-node renewal processes, the
// merged platform-level process, and recordable/replayable failure
// traces.
//
// MTBF conventions follow the paper: a platform of n nodes with
// individual MTBF Mind behaves like a single node of MTBF M = Mind/n,
// and the per-node failure rate is λ = 1/(n·M).
package failure

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eventq"
	"repro/internal/rng"
)

// Law is an inter-arrival distribution for the failures of one node.
type Law interface {
	// Sample draws the time from one failure (or node birth) to the
	// next failure of the same node.
	Sample(s *rng.Stream) float64
	// Mean returns the distribution mean (the individual MTBF).
	Mean() float64
	// Name identifies the law in reports.
	Name() string
}

// Exponential is the memoryless law assumed throughout the paper's
// analysis. MTBF is the mean time between failures of one node.
type Exponential struct{ MTBF float64 }

// Sample draws an Exponential inter-arrival time.
func (e Exponential) Sample(s *rng.Stream) float64 { return s.Exponential(1 / e.MTBF) }

// Mean returns the individual MTBF.
func (e Exponential) Mean() float64 { return e.MTBF }

// Name returns "exponential".
func (e Exponential) Name() string { return "exponential" }

// Weibull is the heavy-tailed law used by the checkpoint-placement
// literature cited in §VII ([8], [9], [10]): Shape < 1 yields the
// decreasing hazard rate observed on production machines. MTBF is the
// mean; the scale is derived as MTBF/Γ(1+1/Shape).
type Weibull struct {
	Shape float64
	MTBF  float64
}

// Scale returns the Weibull scale parameter matching the mean.
func (w Weibull) Scale() float64 { return w.MTBF / math.Gamma(1+1/w.Shape) }

// Sample draws a Weibull inter-arrival time.
func (w Weibull) Sample(s *rng.Stream) float64 { return s.Weibull(w.Shape, w.Scale()) }

// Mean returns the individual MTBF.
func (w Weibull) Mean() float64 { return w.MTBF }

// Name returns "weibull(k)".
func (w Weibull) Name() string { return fmt.Sprintf("weibull(%g)", w.Shape) }

// LogNormal models failure clustering through a multiplicative noise
// parameter Sigma; the mean is MTBF.
type LogNormal struct {
	MTBF  float64
	Sigma float64
}

// Sample draws a LogNormal inter-arrival time with mean MTBF.
func (l LogNormal) Sample(s *rng.Stream) float64 {
	// mean of LogNormal(mu, sigma) is exp(mu + sigma²/2).
	mu := math.Log(l.MTBF) - l.Sigma*l.Sigma/2
	return s.LogNormal(mu, l.Sigma)
}

// Mean returns the individual MTBF.
func (l LogNormal) Mean() float64 { return l.MTBF }

// Name returns "lognormal(sigma)".
func (l LogNormal) Name() string { return fmt.Sprintf("lognormal(%g)", l.Sigma) }

// PlatformMTBF converts an individual node MTBF into the platform
// MTBF M = Mind/n.
func PlatformMTBF(individual float64, n int) float64 { return individual / float64(n) }

// IndividualMTBF converts a platform MTBF into the per-node MTBF
// Mind = n·M.
func IndividualMTBF(platform float64, n int) float64 { return platform * float64(n) }

// Event is one failure: the absolute time and the victim node.
type Event struct {
	Time float64 `json:"t"`
	Node int     `json:"node"`
}

// Source produces a platform's failure sequence in non-decreasing
// time order.
type Source interface {
	// Next returns the next failure. ok is false when the source is
	// exhausted (generative sources never exhaust).
	Next() (Event, bool)
}

// Merged is the platform-level failure process for Exponential laws:
// the superposition of n independent Poisson processes is a Poisson
// process of rate n·λ = 1/M whose victims are uniform over the nodes.
// This is what makes simulating a 10⁶-node platform cheap.
type Merged struct {
	n      int
	rate   float64
	now    float64
	stream *rng.Stream
}

// NewMerged returns a merged source for n nodes and platform MTBF m.
func NewMerged(n int, platformMTBF float64, stream *rng.Stream) *Merged {
	if n < 1 || platformMTBF <= 0 {
		panic("failure: invalid merged source parameters")
	}
	return &Merged{n: n, rate: 1 / platformMTBF, stream: stream}
}

// Next draws the next platform failure. It never allocates, which
// makes it the simulator's zero-allocation exponential fast path; the
// engine calls it through the concrete *Merged (no interface dispatch).
func (m *Merged) Next() (Event, bool) {
	m.now += m.stream.Exponential(m.rate)
	return Event{Time: m.now, Node: m.stream.Intn(m.n)}, true
}

// Reseed rewinds the merged process for a fresh run: the clock returns
// to 0 and the underlying stream is reseeded in place, so one Merged
// can serve an entire Monte-Carlo batch without per-run allocation.
func (m *Merged) Reseed(seed uint64) {
	m.now = 0
	m.stream.Reseed(seed)
}

// FillEvents fills times/nodes with the next len(times) platform
// failures — exactly the sequence len(times) Next calls would produce,
// bit for bit. The stream is consumed in the same per-event order as
// Next (inter-arrival uniform, then victim), but the logs are deferred
// to one batched pass over the buffered uniforms (rng.ExpFromUniforms)
// so they pipeline at throughput instead of serializing per event, and
// the cumulative clock is summed afterwards in event order. us is
// caller-owned scratch of len(times) (the lane kernel reuses one
// buffer across refills). nodes and us must be at least len(times)
// long.
func (m *Merged) FillEvents(times []float64, nodes []int32, us []float64) {
	n := len(times)
	nodes, us = nodes[:n], us[:n]
	for k := range us {
		us[k] = m.stream.PositiveFloat64()
		nodes[k] = int32(m.stream.Intn(m.n))
	}
	rng.ExpFromUniforms(m.rate, us, us)
	now := m.now
	for k, dt := range us {
		now += dt
		times[k] = now
	}
	m.now = now
}

// FillEventsZiggurat is FillEvents drawing the inter-arrival times
// from the ziggurat sampler instead of the inverse CDF: the same
// distribution, a different (log-free) stream consumption, so the
// event sequence is statistically — not bitwise — equivalent to the
// Next/FillEvents sequence.
func (m *Merged) FillEventsZiggurat(times []float64, nodes []int32) {
	n := len(times)
	nodes = nodes[:n]
	now := m.now
	for k := range times {
		now += m.stream.ExpZiggurat(m.rate)
		times[k] = now
		nodes[k] = int32(m.stream.Intn(m.n))
	}
	m.now = now
}

// Renewal is the node-level failure process: each node independently
// draws inter-arrival times from its law. It supports non-memoryless
// laws (Weibull, LogNormal) at O(log n) per failure.
type Renewal struct {
	q    eventq.Queue[int]
	laws []Law
	strs []rng.Stream
}

// NewRenewal returns a renewal source where node i follows laws[i].
// Each node gets an independent child stream of parent.
func NewRenewal(laws []Law, parent *rng.Stream) *Renewal {
	r := &Renewal{laws: laws, strs: make([]rng.Stream, len(laws))}
	r.Reseed(parent)
	return r
}

// Reseed rewinds the renewal process for a fresh run: every node's
// child stream is re-derived from parent in place and its first
// failure rescheduled, reusing the queue's and streams' storage.
func (r *Renewal) Reseed(parent *rng.Stream) {
	r.q.Clear()
	for i, law := range r.laws {
		r.strs[i].ReseedSplit(parent, uint64(i))
		r.q.Schedule(law.Sample(&r.strs[i]), i)
	}
}

// NewRenewalUniform returns a renewal source where every one of n
// nodes follows the same law.
func NewRenewalUniform(n int, law Law, parent *rng.Stream) *Renewal {
	laws := make([]Law, n)
	for i := range laws {
		laws[i] = law
	}
	return NewRenewal(laws, parent)
}

// Next pops the earliest node failure and schedules that node's
// subsequent failure. It is allocation-free in steady state: the queue
// stores node indices by value, so no event object or interface box is
// created per failure.
func (r *Renewal) Next() (Event, bool) {
	ev, ok := r.q.Pop()
	if !ok {
		return Event{}, false
	}
	node := ev.Payload
	r.q.Schedule(ev.Time+r.laws[node].Sample(&r.strs[node]), node)
	return Event{Time: ev.Time, Node: node}, true
}

// ErrTraceExhausted reports that a simulation needed failures beyond
// the coverage of its replayed trace. Running on regardless would
// silently simulate a fault-free tail and bias waste low, so
// trace-backed runs fail loudly with this error instead.
var ErrTraceExhausted = errors.New("failure: trace exhausted before simulation horizon")

// Bounded is a Source whose silence is only meaningful up to a
// coverage horizon: past it, "no more events" means "unknown", not
// "fault-free". The simulator checks this before treating exhaustion
// as an infinite failure-free suffix.
type Bounded interface {
	Source
	// CoverageHorizon returns the absolute time up to which the
	// source's event log is complete.
	CoverageHorizon() float64
}

// Replay replays a recorded trace.
type Replay struct {
	trace    []Event
	pos      int
	coverage float64
}

// NewReplay returns a source that replays the given raw events in
// order. With no trace metadata the coverage is unbounded (legacy
// semantics): exhaustion means fault-free forever. Use NewReplayTrace
// for recorded traces with a known observation window.
func NewReplay(trace []Event) *Replay {
	return &Replay{trace: trace, coverage: math.Inf(1)}
}

// NewReplayTrace returns a source replaying a recorded trace, bounded
// by the trace's coverage: silence past Trace.Coverage is unknown, and
// a simulation needing events beyond it must fail with
// ErrTraceExhausted rather than run fault-free.
func NewReplayTrace(tr *Trace) *Replay {
	return &Replay{trace: tr.Events, coverage: tr.Coverage()}
}

// Next returns the next recorded failure; ok is false past the end.
func (r *Replay) Next() (Event, bool) {
	if r.pos >= len(r.trace) {
		return Event{}, false
	}
	ev := r.trace[r.pos]
	r.pos++
	return ev, true
}

// CoverageHorizon returns the time up to which the replayed log is
// complete (+Inf for raw event-slice replays).
func (r *Replay) CoverageHorizon() float64 { return r.coverage }

// Rewind restarts the replay from the first event, so one Replay can
// serve every run of a Monte-Carlo batch.
func (r *Replay) Rewind() { r.pos = 0 }

// Recorder wraps a source and keeps every event it produced, so that a
// detailed simulation can be re-run on the exact same failure sample.
type Recorder struct {
	Inner Source
	Log   []Event
}

// Next forwards to the inner source and records the event.
func (rec *Recorder) Next() (Event, bool) {
	ev, ok := rec.Inner.Next()
	if ok {
		rec.Log = append(rec.Log, ev)
	}
	return ev, ok
}
