package failure

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// TestReadTraceRejectsTrailingData pins the EOF-after-decode fix:
// json.Decoder.Decode stops at the first JSON value, so a trace glued
// to garbage (or two concatenated traces) used to pass silently.
func TestReadTraceRejectsTrailingData(t *testing.T) {
	valid := `{"nodes":4,"platform_mtbf":100,"law":"exponential","events":[{"t":1,"node":0}]}`
	if _, err := ReadTrace(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []string{
		valid + "garbage",
		valid + valid, // two concatenated documents
		valid + `{"nodes":1}`,
		valid + "[1,2,3]",
		valid + "null",
	}
	for i, doc := range bad {
		if _, err := ReadTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("document %d with trailing data should fail", i)
		}
	}
	// Trailing whitespace and newlines are not data.
	if _, err := ReadTrace(strings.NewReader(valid + "\n  \n")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

// TestTraceValidateRejectsNonFinite pins the NaN/Inf fix: `NaN < prev`
// is false, so a pure ordering check silently admits non-finite times.
func TestTraceValidateRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []struct {
		name string
		tr   Trace
	}{
		{"NaN time", Trace{Nodes: 4, Events: []Event{{Time: nan, Node: 0}}}},
		{"+Inf time", Trace{Nodes: 4, Events: []Event{{Time: inf, Node: 0}}}},
		{"-Inf time", Trace{Nodes: 4, Events: []Event{{Time: math.Inf(-1), Node: 0}}}},
		{"negative after NaN", Trace{Nodes: 4, Events: []Event{{Time: nan, Node: 0}, {Time: -1, Node: 0}}}},
		{"NaN platform MTBF", Trace{Nodes: 4, PlatformMTBF: nan}},
		{"+Inf platform MTBF", Trace{Nodes: 4, PlatformMTBF: inf}},
		{"negative platform MTBF", Trace{Nodes: 4, PlatformMTBF: -1}},
		{"NaN horizon", Trace{Nodes: 4, Horizon: nan}},
		{"+Inf horizon", Trace{Nodes: 4, Horizon: inf}},
		{"horizon before last event", Trace{Nodes: 4, Horizon: 5, Events: []Event{{Time: 10, Node: 0}}}},
		{"negative time", Trace{Nodes: 4, Events: []Event{{Time: -3, Node: 0}}}},
	}
	for _, tc := range bad {
		if err := tc.tr.Validate(); err == nil {
			t.Errorf("%s: should fail validation", tc.name)
		}
	}
	ok := Trace{Nodes: 4, PlatformMTBF: 100, Horizon: 20, Events: []Event{{Time: 1, Node: 0}, {Time: 1, Node: 3}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

// TestCollectRecordsHorizon pins that the recording path stamps the
// observation window, so replays know how far silence is meaningful.
func TestCollectRecordsHorizon(t *testing.T) {
	src := NewMerged(8, 20, rng.New(13))
	tr := Collect(src, 8, 20, "exponential", 750)
	if tr.Horizon != 750 {
		t.Fatalf("Collect recorded horizon %v, want 750", tr.Horizon)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Horizon != 750 {
		t.Fatalf("horizon did not round-trip: %v", back.Horizon)
	}
}

func TestTraceCoverage(t *testing.T) {
	withHorizon := Trace{Nodes: 2, Horizon: 100, Events: []Event{{Time: 30, Node: 0}}}
	if got := withHorizon.Coverage(); got != 100 {
		t.Fatalf("coverage with horizon = %v, want 100", got)
	}
	legacy := Trace{Nodes: 2, Events: []Event{{Time: 30, Node: 0}, {Time: 70, Node: 1}}}
	if got := legacy.Coverage(); got != 70 {
		t.Fatalf("legacy coverage = %v, want last event 70", got)
	}
	empty := Trace{Nodes: 2}
	if got := empty.Coverage(); got != 0 {
		t.Fatalf("empty coverage = %v, want 0", got)
	}
}

func TestReplayCoverage(t *testing.T) {
	events := []Event{{Time: 5, Node: 0}, {Time: 9, Node: 1}}
	raw := NewReplay(events)
	if !math.IsInf(raw.CoverageHorizon(), 1) {
		t.Fatalf("raw replay coverage = %v, want +Inf", raw.CoverageHorizon())
	}
	tr := &Trace{Nodes: 2, Horizon: 50, Events: events}
	rep := NewReplayTrace(tr)
	if rep.CoverageHorizon() != 50 {
		t.Fatalf("trace replay coverage = %v, want 50", rep.CoverageHorizon())
	}
	var got []Event
	for {
		ev, ok := rep.Next()
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if len(got) != 2 || got[0] != events[0] || got[1] != events[1] {
		t.Fatalf("trace replay produced %v", got)
	}
	rep.Rewind()
	if ev, ok := rep.Next(); !ok || ev != events[0] {
		t.Fatalf("rewound replay produced %v, %v", ev, ok)
	}
}
