package network

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFabricValidate(t *testing.T) {
	if err := (Fabric{LinkBandwidth: 1e9}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Fabric{
		{LinkBandwidth: 0},
		{LinkBandwidth: -1},
		{LinkBandwidth: math.Inf(1)},
		{LinkBandwidth: math.NaN()},
		{LinkBandwidth: 1e9, Latency: -1},
		{LinkBandwidth: 1e9, Latency: math.NaN()},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("fabric %d should be invalid", i)
		}
	}
}

func TestBlockingTimeMatchesTableI(t *testing.T) {
	// Base scenario: 512 MB image at 128 MB/s gives R = 4 s, the
	// Table I value.
	f := Fabric{LinkBandwidth: 128 << 20}
	if got := f.BlockingTime(512 << 20); math.Abs(got-4) > 1e-12 {
		t.Fatalf("R = %v, want 4", got)
	}
	// Latency adds on top.
	f.Latency = 0.5
	if got := f.BlockingTime(512 << 20); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("R with latency = %v, want 4.5", got)
	}
}

func TestStretchedTime(t *testing.T) {
	f := Fabric{LinkBandwidth: 100}
	if got := f.StretchedTime(1000, 1); got != 10 {
		t.Fatalf("stretch 1 = %v, want 10", got)
	}
	if got := f.StretchedTime(1000, 11); got != 110 {
		t.Fatalf("stretch 11 = %v, want 110 ((1+α)R with α=10)", got)
	}
	// Stretch below 1 clamps to 1 (cannot beat the link).
	if got := f.StretchedTime(1000, 0.5); got != 10 {
		t.Fatalf("stretch 0.5 = %v, want 10", got)
	}
}

func TestExchangePairNoContention(t *testing.T) {
	// A symmetric buddy exchange: 0→1 and 1→0. Each node has one
	// outgoing and one incoming transfer; with full-duplex links
	// modeled as independent in/out shares... our model shares the
	// link across both directions, so each runs at half speed.
	f := Fabric{LinkBandwidth: 100}
	e := NewExchange(f)
	e.Add(0, 1, 1000)
	e.Add(1, 0, 1000)
	makespan := e.Drain()
	if math.Abs(makespan-20) > 1e-9 {
		t.Fatalf("pair exchange makespan = %v, want 20 (half-rate both ways)", makespan)
	}
}

func TestExchangeSingleTransfer(t *testing.T) {
	f := Fabric{LinkBandwidth: 100}
	e := NewExchange(f)
	tr := e.Add(0, 1, 500)
	done, step := e.Step(math.Inf(1))
	if done != tr {
		t.Fatal("wrong transfer completed")
	}
	if math.Abs(step-5) > 1e-9 {
		t.Fatalf("transfer took %v, want 5", step)
	}
	if e.Active() != 0 {
		t.Fatal("exchange should be drained")
	}
}

func TestExchangeContentionFanIn(t *testing.T) {
	// Two senders to one receiver: the receiver's link is the
	// bottleneck, each transfer gets half of it, total time doubles.
	f := Fabric{LinkBandwidth: 100}
	e := NewExchange(f)
	e.Add(1, 0, 1000)
	e.Add(2, 0, 1000)
	makespan := e.Drain()
	if math.Abs(makespan-20) > 1e-9 {
		t.Fatalf("fan-in makespan = %v, want 20", makespan)
	}
}

func TestExchangeRatesRebalanceAfterCompletion(t *testing.T) {
	// Unequal sizes into one receiver: after the small one finishes,
	// the big one speeds up. 500 and 1500 bytes at 100 B/s shared:
	// t=10 the small is done (50 B/s each); remaining 1000 bytes at
	// full 100 B/s takes 10 more: makespan 20.
	f := Fabric{LinkBandwidth: 100}
	e := NewExchange(f)
	e.Add(1, 0, 500)
	e.Add(2, 0, 1500)
	done, step := e.Step(math.Inf(1))
	if done == nil || done.From != 1 || math.Abs(step-10) > 1e-9 {
		t.Fatalf("first completion: %+v after %v", done, step)
	}
	done, step = e.Step(math.Inf(1))
	if done == nil || done.From != 2 || math.Abs(step-10) > 1e-9 {
		t.Fatalf("second completion: %+v after %v", done, step)
	}
	if math.Abs(e.Now()-20) > 1e-9 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
}

func TestExchangeStepBounded(t *testing.T) {
	f := Fabric{LinkBandwidth: 100}
	e := NewExchange(f)
	e.Add(0, 1, 1000)
	done, step := e.Step(3)
	if done != nil {
		t.Fatal("no transfer should complete in 3 s")
	}
	if step != 3 || e.Now() != 3 {
		t.Fatalf("step = %v, now = %v", step, e.Now())
	}
	// Remaining 700 bytes complete at t=10.
	done, _ = e.Step(math.Inf(1))
	if done == nil || math.Abs(e.Now()-10) > 1e-9 {
		t.Fatalf("completion at %v, want 10", e.Now())
	}
}

func TestExchangeEmptyStep(t *testing.T) {
	e := NewExchange(Fabric{LinkBandwidth: 1})
	done, step := e.Step(5)
	if done != nil || step != 5 || e.Now() != 5 {
		t.Fatalf("empty exchange step: %v %v %v", done, step, e.Now())
	}
	if e.Drain() != 0 {
		t.Fatal("empty drain should take no time")
	}
}

// TestExchangeConservationProperty: total bytes delivered per unit
// time never exceed any link's bandwidth, and the makespan of a
// symmetric all-pairs exchange of equal images equals the per-pair
// time regardless of the number of pairs (the paper's premise that
// buddy checkpointing scales: the load is fully distributed).
func TestExchangeScalesWithPairs(t *testing.T) {
	f := Fabric{LinkBandwidth: 100}
	for _, pairs := range []int{1, 4, 16, 64} {
		e := NewExchange(f)
		for p := 0; p < pairs; p++ {
			a, b := 2*p, 2*p+1
			e.Add(a, b, 1000)
			e.Add(b, a, 1000)
		}
		makespan := e.Drain()
		if math.Abs(makespan-20) > 1e-9 {
			t.Fatalf("%d pairs: makespan %v, want 20 (independent of pair count)", pairs, makespan)
		}
	}
}

func TestExchangeMakespanLowerBoundProperty(t *testing.T) {
	// The makespan is at least (total bytes through the busiest
	// link) / bandwidth.
	f := Fabric{LinkBandwidth: 100}
	cases := [][]struct {
		from, to int
		bytes    int64
	}{
		{{0, 1, 500}, {0, 2, 700}, {3, 0, 900}},
		{{1, 0, 100}, {2, 0, 100}, {3, 0, 100}, {4, 0, 100}},
		{{0, 1, 1000}, {2, 3, 1000}, {4, 5, 123}},
	}
	for i, transfers := range cases {
		e := NewExchange(f)
		load := map[int]int64{}
		for _, tr := range transfers {
			e.Add(tr.from, tr.to, tr.bytes)
			load[tr.from] += tr.bytes
			load[tr.to] += tr.bytes
		}
		var busiest int64
		for _, b := range load {
			if b > busiest {
				busiest = b
			}
		}
		lower := float64(busiest) / f.LinkBandwidth
		makespan := e.Drain()
		if makespan < lower-1e-9 {
			t.Errorf("case %d: makespan %v below physical bound %v", i, makespan, lower)
		}
	}
}

func TestStretchedTimeMonotoneProperty(t *testing.T) {
	f := Fabric{LinkBandwidth: 1e6, Latency: 0.1}
	prop := func(rawA, rawB float64) bool {
		a := 1 + math.Mod(math.Abs(rawA), 100)
		b := 1 + math.Mod(math.Abs(rawB), 100)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return f.StretchedTime(1<<20, a) <= f.StretchedTime(1<<20, b)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
