// Package network models the interconnect used for buddy checkpoint
// exchanges: per-node link bandwidth, transfer durations, the
// stretch/overhead trade-off of the paper's overlap model, and a
// simple fair-share contention model for concurrent transfers on the
// same link.
//
// It grounds the scenario constants of Table I: R is the time to push
// one image at full link speed, and stretching a transfer to s·R
// lowers the compute overhead per the α interpolation.
package network

import (
	"fmt"
	"math"
)

// Fabric describes the interconnect.
type Fabric struct {
	// LinkBandwidth is the per-node injection bandwidth in bytes/s.
	LinkBandwidth float64
	// Latency is the per-transfer startup cost in seconds.
	Latency float64
}

// Validate reports an error for non-physical parameters.
func (f Fabric) Validate() error {
	if f.LinkBandwidth <= 0 || math.IsInf(f.LinkBandwidth, 0) || math.IsNaN(f.LinkBandwidth) {
		return fmt.Errorf("network: bandwidth %v must be finite and positive", f.LinkBandwidth)
	}
	if f.Latency < 0 || math.IsNaN(f.Latency) {
		return fmt.Errorf("network: latency %v must be >= 0", f.Latency)
	}
	return nil
}

// BlockingTime returns R = θmin for an image of the given size: the
// time to push it at full link speed.
func (f Fabric) BlockingTime(bytes int64) float64 {
	return f.Latency + float64(bytes)/f.LinkBandwidth
}

// StretchedTime returns the duration of a transfer throttled to a
// fraction 1/stretch of the link bandwidth (stretch ≥ 1), which is how
// the non-blocking protocols trade transfer time for lower compute
// overhead.
func (f Fabric) StretchedTime(bytes int64, stretch float64) float64 {
	if stretch < 1 {
		stretch = 1
	}
	return f.Latency + float64(bytes)*stretch/f.LinkBandwidth
}

// Transfer is one in-flight image transfer between two ranks.
type Transfer struct {
	From, To  int
	Bytes     int64
	remaining float64 // bytes left
	rate      float64 // current bytes/s
}

// Exchange tracks a set of concurrent transfers with fair-share link
// contention: a node's injection (and reception) bandwidth is split
// evenly among its active transfers. The buddy exchange phase of the
// protocols is one Exchange with n transfers (a perfect pairing has no
// contention; a degraded rewiring after failures may have some).
type Exchange struct {
	fabric    Fabric
	transfers []*Transfer
	now       float64
}

// NewExchange creates an empty exchange at time 0.
func NewExchange(f Fabric) *Exchange {
	return &Exchange{fabric: f}
}

// Add inserts a transfer. Rates of all transfers are recomputed.
func (e *Exchange) Add(from, to int, bytes int64) *Transfer {
	t := &Transfer{From: from, To: to, Bytes: bytes, remaining: float64(bytes)}
	e.transfers = append(e.transfers, t)
	e.recomputeRates()
	return t
}

// Active returns the number of unfinished transfers.
func (e *Exchange) Active() int { return len(e.transfers) }

// Now returns the exchange clock.
func (e *Exchange) Now() float64 { return e.now }

// recomputeRates applies fair sharing: each endpoint's bandwidth is
// divided by its number of active transfers; a transfer runs at the
// minimum of its two endpoint shares.
func (e *Exchange) recomputeRates() {
	load := make(map[int]int)
	for _, t := range e.transfers {
		load[t.From]++
		load[t.To]++
	}
	for _, t := range e.transfers {
		shareFrom := e.fabric.LinkBandwidth / float64(load[t.From])
		shareTo := e.fabric.LinkBandwidth / float64(load[t.To])
		t.rate = math.Min(shareFrom, shareTo)
	}
}

// Step advances the exchange until the next transfer completes or dt
// elapses, whichever is sooner. It returns the completed transfer (nil
// if none completed) and the time actually advanced.
func (e *Exchange) Step(dt float64) (*Transfer, float64) {
	if len(e.transfers) == 0 {
		e.now += dt
		return nil, dt
	}
	// Find the earliest completion under current rates.
	best := -1
	bestT := math.Inf(1)
	for i, t := range e.transfers {
		if t.rate <= 0 {
			continue
		}
		if ct := t.remaining / t.rate; ct < bestT {
			bestT, best = ct, i
		}
	}
	step := math.Min(dt, bestT)
	for _, t := range e.transfers {
		t.remaining -= t.rate * step
	}
	e.now += step
	if step < bestT || best < 0 {
		return nil, step
	}
	done := e.transfers[best]
	done.remaining = 0
	e.transfers = append(e.transfers[:best], e.transfers[best+1:]...)
	e.recomputeRates()
	return done, step
}

// Drain runs the exchange to completion and returns the makespan (the
// time from start until the last transfer finishes).
func (e *Exchange) Drain() float64 {
	start := e.now
	for len(e.transfers) > 0 {
		if _, step := e.Step(math.Inf(1)); step == 0 && len(e.transfers) > 0 {
			// All remaining transfers have zero rate; cannot progress.
			break
		}
	}
	return e.now - start
}
