package checkpoint

import (
	"testing"
	"testing/quick"
)

// commitWave drives a full double-checkpointing wave for all ranks:
// local copy + buddy copy, then completion.
func commitWave(r *Registry) Version {
	v := r.BeginWave()
	n := r.Ranks()
	for rank := 0; rank < n; rank++ {
		buddy := rank ^ 1 // pair partner
		r.AddReplica(rank, v, rank)
		r.AddReplica(rank, v, buddy)
	}
	for rank := 0; rank < n; rank++ {
		r.RankComplete(rank)
	}
	return v
}

func TestInitialStateAlwaysRecoverable(t *testing.T) {
	r := NewRegistry(4, 512<<20)
	// Version 0 (the starting configuration) is "always successful".
	for rank := 0; rank < 4; rank++ {
		if !r.Recoverable(rank) {
			t.Fatalf("rank %d not recoverable at version 0", rank)
		}
	}
	if r.Committed() != 0 || r.Current() != 0 {
		t.Fatalf("fresh registry: committed %d current %d", r.Committed(), r.Current())
	}
}

func TestCommitLifecycle(t *testing.T) {
	r := NewRegistry(4, 1<<20)
	v := r.BeginWave()
	if v != 1 || r.Current() != 1 || r.Committed() != 0 {
		t.Fatalf("wave start: v=%d current=%d committed=%d", v, r.Current(), r.Committed())
	}
	// Completing 3 of 4 ranks must not commit.
	for rank := 0; rank < 3; rank++ {
		r.AddReplica(rank, v, rank)
		r.AddReplica(rank, v, rank^1)
		if r.RankComplete(rank) {
			t.Fatalf("premature commit at rank %d", rank)
		}
	}
	if r.Committed() != 0 {
		t.Fatal("set committed before all ranks completed")
	}
	r.AddReplica(3, v, 3)
	r.AddReplica(3, v, 2)
	if !r.RankComplete(3) {
		t.Fatal("last rank completion should commit the set")
	}
	if r.Committed() != 1 {
		t.Fatalf("committed = %d, want 1", r.Committed())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRankCompleteIdempotent(t *testing.T) {
	r := NewRegistry(2, 1)
	v := r.BeginWave()
	r.AddReplica(0, v, 0)
	if r.RankComplete(0) {
		t.Fatal("commit with rank 1 pending")
	}
	if r.RankComplete(0) {
		t.Fatal("duplicate completion committed the set")
	}
	if r.RankComplete(0) {
		t.Fatal("triplicate completion committed the set")
	}
	r.AddReplica(1, v, 1)
	if !r.RankComplete(1) {
		t.Fatal("final rank should commit")
	}
	// Completion outside a wave is a no-op.
	if r.RankComplete(0) {
		t.Fatal("completion outside a wave committed something")
	}
}

func TestOldSetDroppedOnCommit(t *testing.T) {
	r := NewRegistry(2, 1)
	commitWave(r) // version 1
	commitWave(r) // version 2
	if r.Committed() != 2 {
		t.Fatalf("committed = %d", r.Committed())
	}
	// Replicas of version 1 must be gone: memory is constant.
	if h := r.Holders(0, 1); len(h) != 0 {
		t.Fatalf("version-1 replicas survive: %v", h)
	}
	if got := r.MemoryUse(0); got != 2 {
		t.Fatalf("memory use = %d images, want 2 (own + buddy)", got)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortedWaveGarbageCollected(t *testing.T) {
	r := NewRegistry(2, 1)
	commitWave(r) // version 1 committed
	v2 := r.BeginWave()
	r.AddReplica(0, v2, 0) // wave aborted here by a failure
	v3 := r.BeginWave()
	if v3 != 2 {
		t.Fatalf("restarted wave version = %d, want 2 (reuses the slot)", v3)
	}
	if h := r.Holders(0, v2); len(h) != 0 {
		// v2 == v3 numerically; ensure the stale replica is gone by
		// checking there are no replicas before any AddReplica.
		t.Fatalf("aborted wave replicas survive: %v", h)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateHolderCreatesRiskWindow(t *testing.T) {
	// The structural counterpart of the paper's risk period: after a
	// failure, the victim's image survives only at the buddy; after
	// invalidating the buddy too, the rank is unrecoverable (fatal).
	r := NewRegistry(2, 1)
	commitWave(r)
	r.InvalidateHolder(0) // rank 0's machine failed
	if !r.Recoverable(0) {
		t.Fatal("rank 0 should be recoverable from its buddy")
	}
	// Rank 1 is now AT RISK: its image survives only in its own
	// memory, so a failure of rank 1 before restoration is fatal.
	// Recoverable answers "could this rank recover if its machine
	// failed right now", which must be false — this is precisely the
	// structural risk window.
	if r.Recoverable(1) {
		t.Fatal("rank 1 should be at risk (no off-node replica)")
	}
	if h := r.Holders(1, r.Committed()); len(h) != 1 || h[0] != 1 {
		t.Fatalf("holders of rank 1 = %v", h)
	}
	r.InvalidateHolder(1) // buddy dies inside the window
	if r.Recoverable(0) || r.Recoverable(1) {
		t.Fatal("double failure should be fatal: no replicas remain")
	}
}

func TestRestorationClosesRiskWindow(t *testing.T) {
	r := NewRegistry(2, 1)
	commitWave(r)
	v := r.Committed()
	r.InvalidateHolder(0)
	if r.Recoverable(1) {
		t.Fatal("rank 1 should be at risk before restoration")
	}
	// Recovery: buddy re-sends rank 0's image, then rank 1's image.
	r.AddReplica(0, v, 0)
	r.AddReplica(1, v, 0)
	// The risk window is closed: even losing rank 1 is survivable.
	if !r.Recoverable(1) {
		t.Fatal("restoration should close rank 1's risk window")
	}
	r.InvalidateHolder(1)
	if !r.Recoverable(1) {
		t.Fatal("after restoration, rank 1's image should survive on rank 0")
	}
}

func TestTripleSurvivesDoubleFailure(t *testing.T) {
	r := NewRegistry(3, 1)
	v := r.BeginWave()
	// §IV layout: p uploads to preferred then secondary buddy.
	for rank := 0; rank < 3; rank++ {
		pref, sec := (rank+1)%3, (rank+2)%3
		r.AddReplica(rank, v, pref)
		r.AddReplica(rank, v, sec)
	}
	for rank := 0; rank < 3; rank++ {
		r.RankComplete(rank)
	}
	r.InvalidateHolder(0)
	r.InvalidateHolder(1)
	// Both failed ranks' images survive on rank 2.
	if !r.Recoverable(0) || !r.Recoverable(1) {
		t.Fatal("triple should survive two failures")
	}
	r.InvalidateHolder(2)
	if r.Recoverable(0) {
		t.Fatal("three failures must be fatal")
	}
}

func TestMemoryBytes(t *testing.T) {
	r := NewRegistry(2, 100)
	commitWave(r)
	if got := r.MemoryBytes(1); got != 200 {
		t.Fatalf("memory bytes = %d, want 200", got)
	}
}

func TestConstantMemoryProperty(t *testing.T) {
	// Across any number of committed waves, per-rank memory stays at
	// exactly 2 images — the paper's constant-memory claim.
	f := func(waves uint8) bool {
		r := NewRegistry(4, 1)
		for w := 0; w < int(waves%20)+1; w++ {
			commitWave(r)
			for rank := 0; rank < 4; rank++ {
				if r.MemoryUse(rank) != 2 {
					return false
				}
			}
			if r.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsDetectsStrays(t *testing.T) {
	r := NewRegistry(2, 1)
	commitWave(r)
	// Forge a stray replica of a long-gone version (both indexes, so
	// only the version check can catch it).
	r.byOwner[0] = append(r.byOwner[0], replica{version: 99, holder: 0})
	r.byHolder[0] = append(r.byHolder[0], heldImage{owner: 0, version: 99})
	if err := r.CheckInvariants(); err == nil {
		t.Fatal("stray version should fail invariants")
	}
}

// TestRegistryReset checks the in-place rewind the detailed batch path
// relies on: after arbitrary waves, commits and invalidations, a Reset
// registry is indistinguishable from a fresh one.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry(4, 1)
	v := r.BeginWave()
	for rank := 0; rank < 4; rank++ {
		r.AddReplica(rank, v, (rank+1)%4)
		r.RankComplete(rank)
	}
	r.BeginWave() // leave a wave in flight
	r.AddReplica(0, r.Current(), 1)
	r.InvalidateHolder(2)
	r.Reset()
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.Committed() != 0 || r.Current() != 0 {
		t.Errorf("versions after reset: committed %d, current %d", r.Committed(), r.Current())
	}
	for rank := 0; rank < 4; rank++ {
		if use := r.MemoryUse(rank); use != 0 {
			t.Errorf("rank %d holds %d replicas after reset", rank, use)
		}
		if !r.Recoverable(rank) {
			t.Errorf("rank %d not recoverable at version 0", rank)
		}
	}
	// The next wave numbering restarts like a fresh registry's.
	if v := r.BeginWave(); v != 1 {
		t.Errorf("first wave after reset = %d, want 1", v)
	}
}
