// Package checkpoint implements the distributed in-memory checkpoint
// storage of the buddy protocols: per-rank images, their replicas on
// buddy ranks, and the atomic snapshot-set semantics of §IV — "keeping
// two sets at all time: the last set of checkpoints that was
// successful, and the current set, that might be unfinished when a
// failure hits the system".
//
// The Registry is the global bookkeeping the detailed simulator
// queries to decide, structurally, whether a rank is recoverable. Its
// answer must agree with the analytic risk windows; the test suite
// asserts that agreement.
package checkpoint

import (
	"fmt"
	"sort"
)

// Version numbers snapshot sets. Version 0 is the initial application
// state, which per the paper "is always successful" (every rank can
// restart from it trivially, so the registry treats it as replicated
// everywhere).
type Version uint64

// Image is one rank's checkpoint of one version.
type Image struct {
	Rank    int
	Version Version
	Bytes   int64
}

// replicaKey locates a replica: whose image, which version, stored on
// which rank.
type replicaKey struct {
	owner   int
	version Version
	holder  int
}

// Registry tracks every image replica in the system and the commit
// state of snapshot sets.
type Registry struct {
	ranks     int
	imageSize int64

	// replicas holds live replicas, including each rank's local copy
	// (holder == owner for a local image).
	replicas map[replicaKey]struct{}

	// committed is the last snapshot version for which EVERY rank's
	// image reached its required replica set.
	committed Version
	// current is the version being assembled (committed+1 while a
	// checkpoint wave is in flight, == committed otherwise).
	current Version
	// pending counts ranks whose current-version replicas are not yet
	// complete.
	pending int
	// done marks ranks complete for the current version.
	done []bool
}

// NewRegistry creates the registry for the given number of ranks with
// the given image size in bytes.
func NewRegistry(ranks int, imageSize int64) *Registry {
	return &Registry{
		ranks:     ranks,
		imageSize: imageSize,
		replicas:  make(map[replicaKey]struct{}),
		done:      make([]bool, ranks),
	}
}

// Ranks returns the number of ranks.
func (r *Registry) Ranks() int { return r.ranks }

// Committed returns the last fully committed snapshot version.
func (r *Registry) Committed() Version { return r.committed }

// Current returns the version currently being assembled.
func (r *Registry) Current() Version { return r.current }

// BeginWave starts assembling the next snapshot set and returns its
// version. Starting a new wave while one is pending abandons the
// unfinished set (its replicas are garbage-collected), which is what
// happens when a failure aborts a checkpointing phase.
func (r *Registry) BeginWave() Version {
	if r.current != r.committed {
		r.dropVersion(r.current)
	}
	r.current = r.committed + 1
	r.pending = r.ranks
	for i := range r.done {
		r.done[i] = false
	}
	return r.current
}

// AddReplica records that holder now stores owner's image of the
// given version.
func (r *Registry) AddReplica(owner int, v Version, holder int) {
	r.replicas[replicaKey{owner, v, holder}] = struct{}{}
}

// RankComplete marks the owner's current-version replica set complete
// (local copy written and remote copies delivered). When every rank is
// complete the set commits atomically: it becomes the rollback target
// and the previous committed set is dropped.
func (r *Registry) RankComplete(owner int) (committedNow bool) {
	if r.current == r.committed || r.done[owner] {
		return false
	}
	r.done[owner] = true
	r.pending--
	if r.pending > 0 {
		return false
	}
	old := r.committed
	r.committed = r.current
	if old > 0 {
		r.dropVersion(old)
	}
	return true
}

// dropVersion removes every replica of a version.
func (r *Registry) dropVersion(v Version) {
	for k := range r.replicas {
		if k.version == v {
			delete(r.replicas, k)
		}
	}
}

// InvalidateHolder removes every replica stored on the given rank
// (the rank's machine failed: its memory content is gone, including
// its own local copies and the buddy images it was holding).
func (r *Registry) InvalidateHolder(holder int) {
	for k := range r.replicas {
		if k.holder == holder {
			delete(r.replicas, k)
		}
	}
}

// Holders returns the ranks currently holding a replica of owner's
// image at the given version, sorted ascending.
func (r *Registry) Holders(owner int, v Version) []int {
	var out []int
	for k := range r.replicas {
		if k.owner == owner && k.version == v {
			out = append(out, k.holder)
		}
	}
	sort.Ints(out)
	return out
}

// Recoverable reports whether the owner's committed image can be
// fetched after the owner's machine failed: some OTHER rank must hold
// a replica of the committed version. Version 0 (the initial state)
// is always recoverable.
func (r *Registry) Recoverable(owner int) bool {
	if r.committed == 0 {
		return true
	}
	for k := range r.replicas {
		if k.owner == owner && k.version == r.committed && k.holder != owner {
			return true
		}
	}
	return false
}

// MemoryUse returns the number of image replicas stored on the given
// rank, the quantity bounded by the paper's "constant memory"
// requirement (2 for double, 2 for triple — own + one buddy image per
// committed set, transiently more while a wave is in flight).
func (r *Registry) MemoryUse(holder int) int {
	n := 0
	for k := range r.replicas {
		if k.holder == holder {
			n++
		}
	}
	return n
}

// MemoryBytes returns MemoryUse in bytes.
func (r *Registry) MemoryBytes(holder int) int64 {
	return int64(r.MemoryUse(holder)) * r.imageSize
}

// CheckInvariants verifies the registry's structural invariants:
// a committed set never coexists with more than one other version,
// and committed > current never happens.
func (r *Registry) CheckInvariants() error {
	if r.current < r.committed {
		return fmt.Errorf("checkpoint: current %d < committed %d", r.current, r.committed)
	}
	versions := make(map[Version]bool)
	for k := range r.replicas {
		versions[k.version] = true
	}
	for v := range versions {
		if v != r.committed && v != r.current {
			return fmt.Errorf("checkpoint: stray replicas of version %d (committed %d, current %d)",
				v, r.committed, r.current)
		}
	}
	return nil
}
