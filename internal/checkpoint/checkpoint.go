// Package checkpoint implements the distributed in-memory checkpoint
// storage of the buddy protocols: per-rank images, their replicas on
// buddy ranks, and the atomic snapshot-set semantics of §IV — "keeping
// two sets at all time: the last set of checkpoints that was
// successful, and the current set, that might be unfinished when a
// failure hits the system".
//
// The Registry is the global bookkeeping the detailed simulator
// queries to decide, structurally, whether a rank is recoverable. Its
// answer must agree with the analytic risk windows; the test suite
// asserts that agreement.
//
// Replicas are indexed twice — by owner and by holder — so that every
// per-failure operation (Recoverable, InvalidateHolder, MemoryUse)
// touches only the handful of replicas actually involved: buddy groups
// have 2 or 3 members, so the per-rank lists stay O(1). Only the
// wave-granularity operations (commit, abort) walk all ranks, and they
// are O(N) by nature. The backing slices survive Reset, so the
// detailed batch path reuses one Registry across a whole Monte-Carlo
// batch without reallocating.
package checkpoint

import (
	"fmt"
	"sort"
)

// Version numbers snapshot sets. Version 0 is the initial application
// state, which per the paper "is always successful" (every rank can
// restart from it trivially, so the registry treats it as replicated
// everywhere).
type Version uint64

// Image is one rank's checkpoint of one version.
type Image struct {
	Rank    int
	Version Version
	Bytes   int64
}

// replica is one stored copy of an owner's image: the version and the
// rank holding it (holder == owner for a local copy).
type replica struct {
	version Version
	holder  int
}

// heldImage is the holder-side view: whose image of which version.
type heldImage struct {
	owner   int
	version Version
}

// Registry tracks every image replica in the system and the commit
// state of snapshot sets.
type Registry struct {
	ranks     int
	imageSize int64

	// byOwner[r] lists the live replicas of rank r's images, including
	// r's local copy; byHolder[r] mirrors it from the holder's side.
	// The two indexes are updated together.
	byOwner  [][]replica
	byHolder [][]heldImage

	// committed is the last snapshot version for which EVERY rank's
	// image reached its required replica set.
	committed Version
	// current is the version being assembled (committed+1 while a
	// checkpoint wave is in flight, == committed otherwise).
	current Version
	// pending counts ranks whose current-version replicas are not yet
	// complete.
	pending int
	// done marks ranks complete for the current version.
	done []bool
}

// NewRegistry creates the registry for the given number of ranks with
// the given image size in bytes.
func NewRegistry(ranks int, imageSize int64) *Registry {
	return &Registry{
		ranks:     ranks,
		imageSize: imageSize,
		byOwner:   make([][]replica, ranks),
		byHolder:  make([][]heldImage, ranks),
		done:      make([]bool, ranks),
	}
}

// Reset rewinds the registry in place to the state NewRegistry
// returned: no replicas, version 0 committed, no wave in flight. It
// keeps every backing slice, so one Registry can serve an entire
// Monte-Carlo batch of detailed runs.
func (r *Registry) Reset() {
	for i := range r.byOwner {
		r.byOwner[i] = r.byOwner[i][:0]
		r.byHolder[i] = r.byHolder[i][:0]
	}
	r.committed = 0
	r.current = 0
	r.pending = 0
	for i := range r.done {
		r.done[i] = false
	}
}

// Ranks returns the number of ranks.
func (r *Registry) Ranks() int { return r.ranks }

// Committed returns the last fully committed snapshot version.
func (r *Registry) Committed() Version { return r.committed }

// Current returns the version currently being assembled.
func (r *Registry) Current() Version { return r.current }

// BeginWave starts assembling the next snapshot set and returns its
// version. Starting a new wave while one is pending abandons the
// unfinished set (its replicas are garbage-collected), which is what
// happens when a failure aborts a checkpointing phase.
func (r *Registry) BeginWave() Version {
	if r.current != r.committed {
		r.dropVersion(r.current)
	}
	r.current = r.committed + 1
	r.pending = r.ranks
	for i := range r.done {
		r.done[i] = false
	}
	return r.current
}

// AddReplica records that holder now stores owner's image of the
// given version. Re-adding an existing replica is a no-op.
func (r *Registry) AddReplica(owner int, v Version, holder int) {
	for _, rep := range r.byOwner[owner] {
		if rep.version == v && rep.holder == holder {
			return
		}
	}
	r.byOwner[owner] = append(r.byOwner[owner], replica{version: v, holder: holder})
	r.byHolder[holder] = append(r.byHolder[holder], heldImage{owner: owner, version: v})
}

// removeOwnerEntry deletes (v, holder) from owner's replica list.
func (r *Registry) removeOwnerEntry(owner int, v Version, holder int) {
	list := r.byOwner[owner]
	for i, rep := range list {
		if rep.version == v && rep.holder == holder {
			list[i] = list[len(list)-1]
			r.byOwner[owner] = list[:len(list)-1]
			return
		}
	}
}

// removeHolderEntry deletes (owner, v) from holder's held-image list.
func (r *Registry) removeHolderEntry(holder int, owner int, v Version) {
	list := r.byHolder[holder]
	for i, h := range list {
		if h.owner == owner && h.version == v {
			list[i] = list[len(list)-1]
			r.byHolder[holder] = list[:len(list)-1]
			return
		}
	}
}

// RankComplete marks the owner's current-version replica set complete
// (local copy written and remote copies delivered). When every rank is
// complete the set commits atomically: it becomes the rollback target
// and the previous committed set is dropped.
func (r *Registry) RankComplete(owner int) (committedNow bool) {
	if r.current == r.committed || r.done[owner] {
		return false
	}
	r.done[owner] = true
	r.pending--
	if r.pending > 0 {
		return false
	}
	old := r.committed
	r.committed = r.current
	if old > 0 {
		r.dropVersion(old)
	}
	return true
}

// dropVersion removes every replica of a version. It walks all ranks —
// the wave granularity — but each rank's list is O(1).
func (r *Registry) dropVersion(v Version) {
	for owner := range r.byOwner {
		list := r.byOwner[owner]
		for i := 0; i < len(list); {
			if list[i].version == v {
				r.removeHolderEntry(list[i].holder, owner, v)
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				continue
			}
			i++
		}
		r.byOwner[owner] = list
	}
}

// InvalidateHolder removes every replica stored on the given rank
// (the rank's machine failed: its memory content is gone, including
// its own local copies and the buddy images it was holding). It is
// O(images on the holder) — a buddy group's worth.
func (r *Registry) InvalidateHolder(holder int) {
	for _, h := range r.byHolder[holder] {
		r.removeOwnerEntry(h.owner, h.version, holder)
	}
	r.byHolder[holder] = r.byHolder[holder][:0]
}

// Holders returns the ranks currently holding a replica of owner's
// image at the given version, sorted ascending.
func (r *Registry) Holders(owner int, v Version) []int {
	var out []int
	for _, rep := range r.byOwner[owner] {
		if rep.version == v {
			out = append(out, rep.holder)
		}
	}
	sort.Ints(out)
	return out
}

// Recoverable reports whether the owner's committed image can be
// fetched after the owner's machine failed: some OTHER rank must hold
// a replica of the committed version. Version 0 (the initial state)
// is always recoverable.
func (r *Registry) Recoverable(owner int) bool {
	if r.committed == 0 {
		return true
	}
	for _, rep := range r.byOwner[owner] {
		if rep.version == r.committed && rep.holder != owner {
			return true
		}
	}
	return false
}

// MemoryUse returns the number of image replicas stored on the given
// rank, the quantity bounded by the paper's "constant memory"
// requirement (2 for double, 2 for triple — own + one buddy image per
// committed set, transiently more while a wave is in flight).
func (r *Registry) MemoryUse(holder int) int {
	return len(r.byHolder[holder])
}

// MemoryBytes returns MemoryUse in bytes.
func (r *Registry) MemoryBytes(holder int) int64 {
	return int64(r.MemoryUse(holder)) * r.imageSize
}

// CheckInvariants verifies the registry's structural invariants:
// a committed set never coexists with more than one other version,
// committed > current never happens, and the owner and holder indexes
// mirror each other exactly.
func (r *Registry) CheckInvariants() error {
	if r.current < r.committed {
		return fmt.Errorf("checkpoint: current %d < committed %d", r.current, r.committed)
	}
	for owner, list := range r.byOwner {
		for _, rep := range list {
			if rep.version != r.committed && rep.version != r.current {
				return fmt.Errorf("checkpoint: stray replicas of version %d (committed %d, current %d)",
					rep.version, r.committed, r.current)
			}
			if !r.holderHas(rep.holder, owner, rep.version) {
				return fmt.Errorf("checkpoint: replica (owner %d, v%d, holder %d) missing from holder index",
					owner, rep.version, rep.holder)
			}
		}
	}
	for holder, list := range r.byHolder {
		for _, h := range list {
			if !r.ownerHas(h.owner, h.version, holder) {
				return fmt.Errorf("checkpoint: held image (owner %d, v%d) on %d missing from owner index",
					h.owner, h.version, holder)
			}
		}
	}
	return nil
}

func (r *Registry) holderHas(holder, owner int, v Version) bool {
	for _, h := range r.byHolder[holder] {
		if h.owner == owner && h.version == v {
			return true
		}
	}
	return false
}

func (r *Registry) ownerHas(owner int, v Version, holder int) bool {
	for _, rep := range r.byOwner[owner] {
		if rep.version == v && rep.holder == holder {
			return true
		}
	}
	return false
}
