// Simulation: validate the analytic model against Monte-Carlo runs,
// record the failure trace of an interesting run, and replay it under
// every protocol — the workflow for studying a specific failure
// pattern (e.g. from a production log) across protocols.
//
//	go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	p := scenario.Base().Params.WithMTBF(20 * scenario.Minute)
	phi := 0.25 * p.R

	// 1. Model vs simulation for DoubleNBL.
	model := core.OptimalWaste(core.DoubleNBL, p, phi)
	agg, err := sim.RunMany(sim.Config{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      phi,
		Tbase:    2 * scenario.Day,
		Seed:     7,
	}, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DoubleNBL waste: model %.4f, simulated %s\n", model, agg.Waste.String())

	// 2. Record one run's failure sample...
	recorder := &failure.Recorder{Inner: failure.NewMerged(p.N, p.M, rng.New(2024))}
	res, err := sim.Run(sim.Config{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      phi,
		Tbase:    scenario.Day,
		Source:   recorder,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded run: %d failures, waste %.4f\n", res.Failures, res.Waste)

	// 3. ...and replay the exact same failures under each protocol.
	fmt.Println("\nsame failure sample, every protocol:")
	for _, pr := range core.Protocols {
		res, err := sim.Run(sim.Config{
			Protocol: pr,
			Params:   p,
			Phi:      phi,
			Tbase:    scenario.Day,
			Source:   failure.NewReplay(recorder.Log),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s waste %.4f, makespan %.0f s, fatal %v\n",
			pr, res.Waste, res.Makespan, res.Fatal)
	}
}
