// Exascale capacity planning: the workload the paper's introduction
// motivates. Given the IESP "slim" exascale machine (10⁶ nodes), sweep
// the individual-node MTBF from 5 years to 100 years and answer the
// operator's questions: how much of the machine do we lose to
// checkpointing, and how often would we lose a whole application run?
//
//	go run ./examples/exascale
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	exa := scenario.Exa()
	year := 365 * scenario.Day
	phi := 0.1 * exa.Params.R // 90% of the exchange hidden by overlap

	fmt.Println("Exascale machine (Table I, Exa): 1e6 nodes, 60s transfers, alpha=10")
	fmt.Printf("assumed overhead: phi/R = %.2f\n\n", phi/exa.Params.R)
	fmt.Println("node MTBF   platform MTBF   DoubleNBL waste   Triple waste   Triple P[success, 1 month]")

	for _, nodeYears := range []float64{5, 10, 25, 50, 100} {
		individual := nodeYears * year
		p := exa.Params.WithMTBF(individual / float64(exa.Params.N))
		double := core.OptimalWaste(core.DoubleNBL, p, phi)
		triple := core.OptimalWaste(core.TripleNBL, p, phi)
		success := core.SuccessProbability(core.TripleNBL, p, phi, 30*scenario.Day)
		fmt.Printf("%5.0f yr    %10.0f s   %15.4f   %12.4f   %.9f\n",
			nodeYears, p.M, double, triple, success)
	}

	// The paper's §I arithmetic: with 50-year nodes, what fraction of
	// million-node platforms sees a failure within an hour?
	p := exa.Params.WithMTBF(50 * year / 1e6)
	noCkpt := core.BaseSuccessProbability(p, scenario.Hour)
	fmt.Printf("\nwith 50-year nodes, P[some node fails within 1h] = %.2f (paper: > 0.86)\n",
		1-noCkpt)

	// And the planning answer: the smallest platform MTBF at which the
	// Triple protocol keeps the machine 90%% useful.
	for m := 60.0; m <= scenario.Day; m *= 1.3 {
		if core.OptimalWaste(core.TripleNBL, exa.Params.WithMTBF(m), phi) <= 0.10 {
			fmt.Printf("Triple keeps waste <= 10%% from platform MTBF ~%.0f s upward\n", m)
			break
		}
	}
}
