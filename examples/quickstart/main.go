// Quickstart: evaluate the unified checkpointing model on the paper's
// Base platform and decide which protocol to run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	// The Base platform of Table I: 324×32 nodes, 512 MB images,
	// local checkpoint in 2 s, blocking buddy transfer in 4 s,
	// overlap factor 10. Take a platform MTBF of one hour.
	platform := scenario.Base().Params.WithMTBF(scenario.Hour)

	// Suppose measurements say our application can hide 90% of the
	// exchange behind computation: φ = 0.1·R.
	phi := 0.1 * platform.R

	fmt.Println("protocol      period(s)  waste    risk-window(s)  P[success, 1 week]")
	for _, pr := range []core.Protocol{core.DoubleNBL, core.DoubleBoF, core.TripleNBL} {
		ev := core.Evaluate(pr, platform, phi)
		success := core.SuccessProbability(pr, platform, phi, scenario.Week)
		fmt.Printf("%-12s  %8.1f   %.4f   %13.1f   %.9f\n",
			pr, ev.Period, ev.Waste, ev.Risk, success)
	}

	// The decision in one line: Triple wastes least whenever the
	// overhead φ is below the local-checkpoint time δ...
	best := core.TripleNBL
	if phi >= platform.Delta {
		best = core.DoubleNBL
	}
	fmt.Printf("\nchoose %s: checkpoint every %.0f s\n",
		best, core.Evaluate(best, platform, phi).Period)
}
