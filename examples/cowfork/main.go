// COW-derived model parameters: the paper's stated future work is to
// replace the assumed overhead φ and overlap factor α with values
// measured from real application write behaviour. This example does
// exactly that with the memory substrate: simulate fork/COW
// checkpointing of a 512 MB process with a skewed write pattern,
// measure φ(θ), fit α, and feed both back into the analytic model to
// choose a protocol.
//
//	go run ./examples/cowfork
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/rng"
	"repro/internal/scenario"
)

func main() {
	// A 512 MB process whose writes follow a Zipf(1.2) working set,
	// dirtying 20k pages/s; a COW duplication costs ~50 µs.
	const pages = 131072
	proc := &memory.Process{
		Pages:     pages,
		PageBytes: 4096,
		WriteRate: 20000,
		Weights:   memory.ZipfWeights(pages, 1.2),
	}
	const copyTime = 50e-6

	base := scenario.Base().Params.WithMTBF(scenario.Hour)
	thetas := []float64{base.R, 2 * base.R, 4 * base.R, 8 * base.R, (1 + base.Alpha) * base.R}

	curve, err := memory.PhiCurve(proc, thetas, copyTime, memory.HotFirst, 100, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured COW overhead (hot-first upload):")
	for _, pt := range curve {
		fmt.Printf("  theta = %4.0f s   phi = %.3f s\n", pt.Theta, pt.Phi)
	}

	alpha, err := memory.FitAlpha(curve, base.R)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted overlap factor alpha = %.2f (the paper assumes 10)\n", alpha)

	// Feed the measured parameters back into the model. Take the
	// longest upload (θmax for the measured α) and its measured φ.
	measured := base
	measured.Alpha = alpha
	phi := curve[len(curve)-1].Phi
	if phi > measured.R {
		phi = measured.R
	}
	fmt.Printf("using measured phi = %.3f s at theta = %.0f s:\n\n", phi, curve[len(curve)-1].Theta)
	for _, pr := range []core.Protocol{core.DoubleNBL, core.TripleNBL} {
		ev := core.Evaluate(pr, measured, phi)
		fmt.Printf("  %-10s period %6.1f s, waste %.4f\n", pr, ev.Period, ev.Waste)
	}

	// The fork trick also shrinks the double protocols' local
	// checkpoint from a full dump to a setup pause.
	fmt.Printf("\nfork-based local checkpoint: delta %.1f s -> %.2f s\n",
		memory.EffectiveDelta(proc, 256<<20, 0.05, false),
		memory.EffectiveDelta(proc, 256<<20, 0.05, true))
	small := measured
	small.Delta = memory.EffectiveDelta(proc, 256<<20, 0.05, true)
	fmt.Printf("DoubleNBL waste with fork-delta: %.4f (was %.4f)\n",
		core.OptimalWaste(core.DoubleNBL, small, phi),
		core.OptimalWaste(core.DoubleNBL, measured, phi))
}
