package repro

// One benchmark per table/figure of the paper's evaluation (§VI), plus
// the Monte-Carlo validation and the ablations of DESIGN.md. Each
// benchmark regenerates its artifact b.N times and reports the
// headline metric the paper quotes for that figure, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction report. Full-resolution artifacts are
// written by cmd/repro.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memory"
	"repro/internal/multilevel"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// benchPoints keeps the per-iteration grids small; cmd/repro renders
// the full-resolution figures.
const benchPoints = 16

var logOnce sync.Once

// logHeadline prints the paper-vs-measured summary a single time.
func logHeadline(b *testing.B) {
	logOnce.Do(func() {
		b.Logf("\n%s\n%s", experiments.TableI(), experiments.Summarize())
	})
}

// BenchmarkTable1Scenarios regenerates Table I.
func BenchmarkTable1Scenarios(b *testing.B) {
	var table string
	for i := 0; i < b.N; i++ {
		table = experiments.TableI()
	}
	if !strings.Contains(table, "Exa") {
		b.Fatal("table truncated")
	}
	logHeadline(b)
}

// wasteSurfaceBench regenerates the three waste surfaces of Fig. 4
// (Base) or Fig. 7 (Exa) and reports the saturation MTBF shape: the
// waste of each protocol at M = 1 h, φ/R = 0.25.
func wasteSurfaceBench(b *testing.B, sc scenario.Scenario) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, pr := range []core.Protocol{core.DoubleBoF, core.DoubleNBL, core.TripleNBL} {
			s := experiments.WasteSurface(sc, pr, benchPoints, benchPoints)
			if lo, hi := s.MinMax(); lo < 0 || hi > 1 {
				b.Fatalf("%s: waste out of range [%v, %v]", pr, lo, hi)
			}
		}
	}
	p := sc.Params.WithMTBF(scenario.Hour)
	phi := 0.25 * p.R
	b.ReportMetric(core.OptimalWaste(core.DoubleBoF, p, phi), "waste-BoF@1h")
	b.ReportMetric(core.OptimalWaste(core.DoubleNBL, p, phi), "waste-NBL@1h")
	b.ReportMetric(core.OptimalWaste(core.TripleNBL, p, phi), "waste-Triple@1h")
	logHeadline(b)
}

// BenchmarkFigure4WasteBase regenerates Fig. 4a/4b/4c.
func BenchmarkFigure4WasteBase(b *testing.B) { wasteSurfaceBench(b, scenario.Base()) }

// BenchmarkFigure7WasteExa regenerates Fig. 7a/7b/7c.
func BenchmarkFigure7WasteExa(b *testing.B) { wasteSurfaceBench(b, scenario.Exa()) }

// wasteRatioBench regenerates Fig. 5 or Fig. 8 and reports the two
// ratios the paper's text quotes.
func wasteRatioBench(b *testing.B, series func(int) []*stats.Series) {
	b.Helper()
	var tri []float64
	for i := 0; i < b.N; i++ {
		ss := series(20)
		tri = ss[1].Ys
	}
	b.ReportMetric(tri[2], "Triple/NBL@0.1")
	b.ReportMetric(tri[len(tri)-1], "Triple/NBL@1.0")
	logHeadline(b)
}

// BenchmarkFigure5WasteRatioBase regenerates Fig. 5 (Base, M = 7h).
// Paper: Triple/DoubleNBL ≈ 0.6 at φ/R = 0.1 and ≤ ~1.15 at φ/R = 1.
func BenchmarkFigure5WasteRatioBase(b *testing.B) {
	wasteRatioBench(b, experiments.Figure5)
}

// BenchmarkFigure8WasteRatioExa regenerates Fig. 8 (Exa, M = 7h).
// Paper: Triple's gain reaches ~25% at φ/R = 1/10.
func BenchmarkFigure8WasteRatioExa(b *testing.B) {
	wasteRatioBench(b, experiments.Figure8)
}

// riskBench regenerates a Fig. 6/9 panel set and reports the worst-
// corner ratios (smallest MTBF, longest exploitation).
func riskBench(b *testing.B, panels func(int) []*stats.Surface) {
	b.Helper()
	var corner [3]float64
	for i := 0; i < b.N; i++ {
		ps := panels(benchPoints)
		for k, s := range ps {
			corner[k] = s.Z[0][len(s.Ys)-1]
		}
	}
	b.ReportMetric(corner[0], "NBL/BoF-corner")
	b.ReportMetric(corner[1], "BoF/Triple-corner")
	b.ReportMetric(corner[2], "NBL/Triple-corner")
	logHeadline(b)
}

// BenchmarkFigure6RiskBase regenerates Fig. 6a/6b (Base success-
// probability ratios, θ = (α+1)R).
func BenchmarkFigure6RiskBase(b *testing.B) { riskBench(b, experiments.Figure6) }

// BenchmarkFigure9RiskExa regenerates Fig. 9a/9b (Exa).
func BenchmarkFigure9RiskExa(b *testing.B) { riskBench(b, experiments.Figure9) }

// BenchmarkSimulationValidation runs the Monte-Carlo validation table
// (model vs simulated waste for every protocol) and reports the worst
// relative disagreement.
func BenchmarkSimulationValidation(b *testing.B) {
	worst := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Validate(scenario.Base(), 1800, 0.25, 1e5, 8, 42)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			rel := (r.SimWaste - r.ModelWaste) / r.ModelWaste
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst, "worst-rel-err")
	logHeadline(b)
}

// BenchmarkAblationCrossover locates the Triple-vs-DoubleNBL waste
// crossover (analysis: φ/R = δ/R = 0.5 on Base).
func BenchmarkAblationCrossover(b *testing.B) {
	var x float64
	for i := 0; i < b.N; i++ {
		x = experiments.CrossoverPhiFrac(scenario.Base().Params)
	}
	b.ReportMetric(x, "crossover-phi/R")
}

// BenchmarkAblationAlphaSweep sweeps the new model parameter α.
func BenchmarkAblationAlphaSweep(b *testing.B) {
	alphas := []float64{0.5, 1, 2, 5, 10, 20, 50}
	var last float64
	for i := 0; i < b.N; i++ {
		s := experiments.AlphaSweep(scenario.Base(), 0.25, alphas)
		last = s.Ys[len(s.Ys)-1]
	}
	b.ReportMetric(last, "Triple/NBL@alpha50")
}

// BenchmarkAblationCOWPhi derives φ from the copy-on-write memory
// substrate (the paper's future-work measurement) and reports the
// fitted α.
func BenchmarkAblationCOWPhi(b *testing.B) {
	proc := &memory.Process{
		Pages:     65536,
		PageBytes: 4096,
		WriteRate: 20000,
		Weights:   memory.ZipfWeights(65536, 1.2),
	}
	thetas := []float64{4, 8, 16, 32, 44}
	var alpha float64
	for i := 0; i < b.N; i++ {
		curve, err := memory.PhiCurve(proc, thetas, 50e-6, memory.HotFirst, 20, rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		alpha, err = memory.FitAlpha(curve, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(alpha, "fitted-alpha")
}

// BenchmarkExtensionMultilevel optimizes the two-level plan (buddy +
// global stable storage, the conclusion's proposed combination) and
// reports the waste premium the global level costs on a hostile
// platform (Base, M = 300 s).
func BenchmarkExtensionMultilevel(b *testing.B) {
	cfg := multilevel.Config{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithMTBF(300),
		Phi:      0,
		G:        200,
		Rg:       200,
	}
	var plan multilevel.Plan
	for i := 0; i < b.N; i++ {
		var err error
		plan, err = multilevel.Optimize(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plan.Waste-plan.InnerWaste, "insurance-premium")
	b.ReportMetric(float64(plan.K), "k")
}

// BenchmarkExtensionWeibull runs the non-exponential failure study
// (§VII refs [8]-[10]) and reports how much bursty Weibull(0.7)
// failures inflate the waste over the exponential model's prediction.
func BenchmarkExtensionWeibull(b *testing.B) {
	var points []experiments.WeibullPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.WeibullStudy(scenario.Base(), 1800, 0.25, 5e4,
			[]float64{0.7}, 4, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].ExpWaste/points[0].ModelWaste, "weibull-inflation")
	b.ReportMetric(points[0].BestMultiplier, "best-period-mult")
}

// BenchmarkEngineThroughput measures raw simulator speed on a
// 30-minute-MTBF platform. The headline metric is rate-based —
// simulated failures processed per wall-clock second — alongside
// allocations per run, so kernel regressions show up whether they cost
// time or memory. cmd/bench runs the same configuration and records it
// in the committed perf trajectory (BENCH_PR2.json).
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := sim.Config{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithMTBF(1800),
		Phi:      1,
		Tbase:    1e6,
	}
	b.ReportAllocs()
	failures := 0
	total := 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		failures = res.Failures
		total += res.Failures
	}
	b.ReportMetric(float64(failures), "failures/run")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "failures/sec")
	}
}

// BenchmarkRunnerThroughput is BenchmarkEngineThroughput over the
// compiled-batch path (sim.Compile + Runner): the per-run compile and
// allocation cost disappears, which is the configuration RunMany and
// the sweep engine actually execute.
func BenchmarkRunnerThroughput(b *testing.B) {
	batch, err := sim.Compile(sim.Config{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithMTBF(1800),
		Phi:      1,
		Tbase:    1e6,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := batch.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += r.Run(uint64(i)).Failures
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "failures/sec")
	}
}
